//! Closed-loop load generator for the serving engine: bursty mixed traffic,
//! optional fault injection, measured tail latency.
//!
//! Spawns `clients` closed-loop client threads against one [`Engine`] under
//! its [`serve`] loop. Each client runs `rounds` rounds; per round it
//! submits a burst of 1–4 requests (a mix of unmasked and masked, most with
//! a comfortable per-request deadline and some with a deliberately tight
//! one), then blocks until every ticket of the burst resolves before
//! starting the next round — the closed loop that makes the measured
//! latencies back-pressure-honest. The queue is bounded with
//! [`OverloadPolicy::ShedOldest`], so bursts genuinely collide with the
//! overload policy.
//!
//! With `--features failpoints`, a chaos thread keeps re-arming one-shot
//! faults while traffic flows — kernel panics in the merge step, injected
//! execute errors, demux delays — so the report measures the engine
//! *recovering*, not just cruising.
//!
//! Every ticket is claimed with a bounded wait: the bin cannot hang on a
//! lost request (that would be a bug this harness exists to catch).
//!
//! The report — p50/p95/p99/max ticket latency, per-outcome counts, shed
//! rate, recovery counters — prints to stdout and is written as JSON to
//! `BENCH_engine_load.json` (override with `BENCH_ENGINE_LOAD_OUT`).
//! Latency percentiles come from per-client [`Histogram`]s (log-linear,
//! relative error ≤ 1/16) merged lock-free at the end, the same machinery
//! the serving stack's own metrics use — not from sorting raw sample
//! vectors. The report also carries an `obs_overhead` section: the same
//! small closed-loop workload timed with observability enabled and with
//! [`ObsConfig::disabled`], so regressions in the telemetry hot path show
//! up in the artifact.
//!
//! Usage: `cargo run --release -p spmspv-bench [--features failpoints] --bin engine_load`
//!
//! Env knobs: `ENGINE_LOAD_SMOKE=1` (reduced run + shape assertions, the CI
//! lane), `ENGINE_LOAD_SCALE`, `ENGINE_LOAD_CLIENTS`, `ENGINE_LOAD_ROUNDS`,
//! `ENGINE_LOAD_SHARDS` (shard count for the sharded phase, default 4),
//! `ENGINE_LOAD_REMOTE=1` (also serve the sharded workload through
//! [`ShardHost`] daemons over localhost sockets), `ENGINE_LOAD_REPLICAS=N`
//! (N ≥ 2: also run the replication chaos phase — every shard served by N
//! replica hosts, every **primary killed mid-load**, zero failed tickets
//! tolerated — reported as the `failover` section).
//!
//! After the serve-loop phase, the same burst workload replays through a
//! [`ShardedEngine`] (1D column-partitioned engines behind the scatter/merge
//! router) and the report gains a `sharded` section: tail latency plus the
//! share of flush wall time spent ⊕-merging shard partials. With
//! `ENGINE_LOAD_REMOTE=1` it replays once more through a TCP-connected
//! fleet and the report gains a `remote` section: tail latency plus the
//! `net.*` wire telemetry (bytes, RPC time, reconnects).
//!
//! [`ShardHost`]: spmspv::net::ShardHost
//!
//! [`ShardedEngine`]: spmspv::shard::ShardedEngine
//!
//! [`Engine`]: spmspv::engine::Engine
//! [`serve`]: spmspv::engine::Engine::serve
//! [`OverloadPolicy::ShedOldest`]: spmspv::engine::OverloadPolicy
//! [`Histogram`]: spmspv::obs::Histogram
//! [`ObsConfig::disabled`]: spmspv::ObsConfig::disabled

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use sparse_substrate::gen::{random_sparse_vec, rmat, RmatParams};
use sparse_substrate::{MaskBits, PlusTimes, SparseVec};
use spmspv::engine::{Engine, EngineConfig, EngineError, MxvRequest, OverloadPolicy};
use spmspv::obs::Histogram;
use spmspv::{MaskMode, ObsConfig, SpMSpVOptions};
use spmspv_bench::report::Json;

/// Per-client outcome tally; merged across clients at the end.
#[derive(Default)]
struct Tally {
    ok: usize,
    deadline_exceeded: usize,
    overloaded: usize,
    failed: usize,
    /// Submit→resolution latency of every request, in microseconds — the
    /// obs layer's log-linear histogram, so clients merge lock-free and
    /// percentiles come from the same estimator the engine's own telemetry
    /// uses.
    latency: Histogram,
}

impl Tally {
    fn absorb(&mut self, other: Tally) {
        self.ok += other.ok;
        self.deadline_exceeded += other.deadline_exceeded;
        self.overloaded += other.overloaded;
        self.failed += other.failed;
        self.latency.merge(&other.latency);
    }

    fn total(&self) -> usize {
        self.ok + self.deadline_exceeded + self.overloaded + self.failed
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// The sharded phase: the same bursty closed-loop traffic, flush-driven
/// through a [`spmspv::shard::ShardedEngine`]. Returns the `sharded` report
/// section — tail latency plus the merge-time share of each flush (the
/// router's own scatter/merge overhead against the shard engines' kernel
/// time).
fn sharded_phase(scale: u32, shards: usize, clients: usize, rounds: usize) -> Json {
    use spmspv::shard::ShardedEngine;

    let a = rmat(scale, 12, RmatParams::graph500(), 7);
    let n = a.ncols();
    let nrows = a.nrows();
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let router = ShardedEngine::partition_with(
        &a,
        PlusTimes,
        spmspv::shard::ShardPlan::balanced(&a, shards),
        EngineConfig::default()
            .max_lanes(16)
            .options(SpMSpVOptions::with_threads(threads.div_ceil(shards.max(1)))),
    );
    let latency = Histogram::default();
    let mut merge_time = Duration::ZERO;
    let mut execute_time = Duration::ZERO;
    let mut requests = 0usize;
    let mut reqno = 0usize;
    for round in 0..rounds {
        // One burst per client per round, claimed after a single router
        // flush (the sharded router is flush-driven — no serve loop yet).
        let mut inflight = Vec::new();
        for c in 0..clients {
            let burst = 1 + (c + round) % 4;
            for _ in 0..burst {
                reqno += 1;
                let frontier: SparseVec<f64> =
                    random_sparse_vec(n, 16 + (reqno * 13) % 48, (c * 10_007 + reqno) as u64);
                let mut req = MxvRequest::new(frontier);
                if reqno.is_multiple_of(3) {
                    let bits = MaskBits::from_indices(nrows, (c % 3..nrows).step_by(2 + reqno % 3));
                    req = req.mask(bits, MaskMode::Complement);
                }
                let submitted = Instant::now();
                inflight.push((router.submit(req), submitted));
            }
        }
        let outcome = router.flush();
        merge_time += outcome.merge_time;
        execute_time += outcome.execute_time;
        for (ticket, submitted) in inflight {
            let resolved = ticket.wait_timeout(Duration::from_secs(10));
            latency.record(submitted.elapsed().as_micros().min(u64::MAX as u128) as u64);
            assert!(resolved.is_ok(), "sharded phase has no faults armed: {resolved:?}");
            requests += 1;
        }
    }
    let snap = latency.snapshot();
    let (p50, p95, p99) = (snap.quantile(0.50), snap.quantile(0.95), snap.quantile(0.99));
    let routed = merge_time + execute_time;
    let merge_share =
        if routed.is_zero() { 0.0 } else { merge_time.as_secs_f64() / routed.as_secs_f64() };
    let stats = router.stats();
    let fanout = router.obs().snapshot();
    let fanout_mean = fanout
        .histogram("shard.fanout")
        .map(|h| if h.count == 0 { 0.0 } else { h.sum as f64 / h.count as f64 })
        .unwrap_or(0.0);

    println!(
        "\nsharded phase ({} shards over {n} columns): {requests} requests, latency (µs) p50 {p50} \
         p95 {p95} p99 {p99}, merge share {:.2}%, mean fan-out {fanout_mean:.2}",
        router.num_shards(),
        merge_share * 100.0,
    );
    assert!(requests > 0, "sharded phase must serve traffic");
    assert!(p50 <= p95 && p95 <= p99, "sharded percentiles must be monotone");

    Json::obj([
        ("shards", Json::Int(router.num_shards() as i64)),
        ("requests", Json::Int(requests as i64)),
        (
            "latency_micros",
            Json::obj([
                ("p50", Json::Int(p50 as i64)),
                ("p95", Json::Int(p95 as i64)),
                ("p99", Json::Int(p99 as i64)),
                ("max", Json::Int(snap.max as i64)),
            ]),
        ),
        ("merge_time_micros", Json::micros(merge_time)),
        ("execute_time_micros", Json::micros(execute_time)),
        ("merge_share", Json::Num(merge_share)),
        ("fanout_mean", Json::Num(fanout_mean)),
        ("lanes_executed", Json::Int(stats.lanes_executed as i64)),
    ])
}

/// The remote phase (`ENGINE_LOAD_REMOTE=1`): the sharded burst workload
/// again, but served by [`spmspv::net::ShardHost`] daemons on ephemeral
/// localhost ports behind a TCP-connected router — the full wire protocol
/// (framing, deadline re-anchoring, gather) under load. Returns the
/// `remote` report section: tail latency plus the `net.*` transport
/// telemetry (bytes moved, per-exchange RPC time, reconnects — which must
/// be zero on a healthy localhost fleet).
fn remote_phase(scale: u32, shards: usize, clients: usize, rounds: usize) -> Json {
    use spmspv::net::{ShardHost, TcpConfig};
    use spmspv::shard::{ShardPlan, ShardedEngine};

    let a = rmat(scale, 12, RmatParams::graph500(), 7);
    let n = a.ncols();
    let nrows = a.nrows();
    let plan = ShardPlan::balanced(&a, shards);
    let mut hosts = Vec::new();
    let mut addrs = Vec::new();
    for (s, part) in a.column_split(plan.bounds()).into_iter().enumerate() {
        let host = ShardHost::bind(
            "127.0.0.1:0",
            s,
            plan.range(s),
            part,
            PlusTimes,
            EngineConfig::default().max_lanes(16),
        )
        .expect("bind a shard host on an ephemeral localhost port");
        addrs.push(host.local_addr().expect("bound listener has an address"));
        hosts.push(host.spawn());
    }
    let router = ShardedEngine::<f64, f64, PlusTimes>::connect(
        plan,
        nrows,
        PlusTimes,
        &addrs,
        TcpConfig::default(),
        ObsConfig::default(),
    )
    .expect("dial every freshly spawned host");

    let latency = Histogram::default();
    let mut requests = 0usize;
    let mut reqno = 0usize;
    for round in 0..rounds {
        let mut inflight = Vec::new();
        for c in 0..clients {
            let burst = 1 + (c + round) % 4;
            for _ in 0..burst {
                reqno += 1;
                let frontier: SparseVec<f64> =
                    random_sparse_vec(n, 16 + (reqno * 13) % 48, (c * 10_007 + reqno) as u64);
                let mut req = MxvRequest::new(frontier);
                if reqno.is_multiple_of(3) {
                    let bits = MaskBits::from_indices(nrows, (c % 3..nrows).step_by(2 + reqno % 3));
                    req = req.mask(bits, MaskMode::Complement);
                }
                let submitted = Instant::now();
                inflight.push((router.submit(req), submitted));
            }
        }
        let outcome = router.flush();
        assert_eq!(outcome.failed, 0, "healthy localhost fleet: {:?}", outcome.failures);
        for (ticket, submitted) in inflight {
            let resolved = ticket.wait_timeout(Duration::from_secs(10));
            latency.record(submitted.elapsed().as_micros().min(u64::MAX as u128) as u64);
            assert!(resolved.is_ok(), "remote phase has no faults armed: {resolved:?}");
            requests += 1;
        }
    }
    let snap = latency.snapshot();
    let (p50, p95, p99) = (snap.quantile(0.50), snap.quantile(0.95), snap.quantile(0.99));
    let obs = router.obs().snapshot();
    let bytes_out = obs.counter("net.bytes.out").unwrap_or(0);
    let bytes_in = obs.counter("net.bytes.in").unwrap_or(0);
    let reconnects = obs.counter("net.reconnects").unwrap_or(0);
    // Obs histograms record nanoseconds; the report speaks microseconds.
    let (rpc_count, rpc_mean) = obs
        .histogram("net.rpc.time")
        .map(|h| (h.count, if h.count == 0 { 0.0 } else { h.sum as f64 / h.count as f64 / 1e3 }))
        .unwrap_or((0, 0.0));

    println!(
        "\nremote phase ({} hosts over {n} columns): {requests} requests, latency (µs) p50 {p50} \
         p95 {p95} p99 {p99}; wire {bytes_out} B out / {bytes_in} B in, {rpc_count} exchanges \
         (mean {rpc_mean:.0} µs), {reconnects} reconnects",
        router.num_shards(),
    );
    assert!(requests > 0, "remote phase must serve traffic");
    assert!(p50 <= p95 && p95 <= p99, "remote percentiles must be monotone");
    assert!(bytes_out > 0 && bytes_in > 0, "served traffic must have crossed the wire");
    assert_eq!(reconnects, 0, "a healthy localhost fleet never reconnects");

    drop(router);
    for host in hosts {
        host.shutdown();
    }

    Json::obj([
        ("shards", Json::Int(shards as i64)),
        ("requests", Json::Int(requests as i64)),
        (
            "latency_micros",
            Json::obj([
                ("p50", Json::Int(p50 as i64)),
                ("p95", Json::Int(p95 as i64)),
                ("p99", Json::Int(p99 as i64)),
                ("max", Json::Int(snap.max as i64)),
            ]),
        ),
        ("bytes_out", Json::Int(bytes_out as i64)),
        ("bytes_in", Json::Int(bytes_in as i64)),
        ("rpc_exchanges", Json::Int(rpc_count as i64)),
        ("rpc_time_micros_mean", Json::Num(rpc_mean)),
        ("reconnects", Json::Int(reconnects as i64)),
    ])
}

/// The replication chaos phase (`ENGINE_LOAD_REPLICAS=N`, N ≥ 2): the
/// burst workload against a fleet with `replicas` hosts per shard, where
/// **every primary is killed halfway through the run**. The surviving
/// replicas must absorb the outage with zero failed tickets (the tentpole
/// failover guarantee, measured under load rather than in a unit test).
/// Returns the `failover` report section: request/failure counts, the
/// `shard.replica.*` failover telemetry, and tail latency across the kill.
fn failover_phase(
    scale: u32,
    shards: usize,
    clients: usize,
    rounds: usize,
    replicas: usize,
) -> Json {
    use spmspv::net::{ShardHost, TcpConfig};
    use spmspv::shard::{ShardPlan, ShardedEngine};

    let a = rmat(scale, 12, RmatParams::graph500(), 7);
    let n = a.ncols();
    let nrows = a.nrows();
    let plan = ShardPlan::balanced(&a, shards).with_fingerprints_of(&a);
    let mut hosts: Vec<Vec<spmspv::net::ShardHostHandle>> = Vec::new();
    let mut groups: Vec<Vec<std::net::SocketAddr>> = Vec::new();
    for (s, part) in a.column_split(plan.bounds()).into_iter().enumerate() {
        let mut hs = Vec::new();
        let mut addrs = Vec::new();
        for _ in 0..replicas {
            let host = ShardHost::bind(
                "127.0.0.1:0",
                s,
                plan.range(s),
                part.clone(),
                PlusTimes,
                EngineConfig::default().max_lanes(16),
            )
            .expect("bind a replica host on an ephemeral localhost port");
            addrs.push(host.local_addr().expect("bound listener has an address"));
            hs.push(host.spawn());
        }
        hosts.push(hs);
        groups.push(addrs);
    }
    let num_shards = plan.num_shards();
    // No background heartbeat: the kill must be discovered *by the flush*,
    // so the measured failovers are the mid-flush re-sends themselves.
    let config = TcpConfig {
        connect_retries: 1,
        retry_backoff: Duration::from_millis(1),
        heartbeat: None,
        ..TcpConfig::default()
    };
    let router = ShardedEngine::<f64, f64, PlusTimes>::connect_replicated(
        plan,
        nrows,
        PlusTimes,
        &groups,
        config,
        ObsConfig::default(),
    )
    .expect("dial every replica of every shard");

    let latency = Histogram::default();
    let mut requests = 0usize;
    let mut reqno = 0usize;
    let mut hosts_killed = 0usize;
    let kill_round = (rounds / 2).max(1);
    for round in 0..rounds {
        if round == kill_round {
            // Mid-load chaos: every primary dies between two bursts.
            for group in &mut hosts {
                group.remove(0).kill();
                hosts_killed += 1;
            }
        }
        let mut inflight = Vec::new();
        for c in 0..clients {
            let burst = 1 + (c + round) % 4;
            for _ in 0..burst {
                reqno += 1;
                let frontier: SparseVec<f64> =
                    random_sparse_vec(n, 16 + (reqno * 13) % 48, (c * 10_007 + reqno) as u64);
                let mut req = MxvRequest::new(frontier);
                if reqno.is_multiple_of(3) {
                    let bits = MaskBits::from_indices(nrows, (c % 3..nrows).step_by(2 + reqno % 3));
                    req = req.mask(bits, MaskMode::Complement);
                }
                let submitted = Instant::now();
                inflight.push((router.submit(req), submitted));
            }
        }
        let outcome = router.flush();
        assert_eq!(
            outcome.failed, 0,
            "round {round}: replicas must absorb every primary death: {:?}",
            outcome.failures
        );
        for (ticket, submitted) in inflight {
            let resolved = ticket.wait_timeout(Duration::from_secs(10));
            latency.record(submitted.elapsed().as_micros().min(u64::MAX as u128) as u64);
            assert!(resolved.is_ok(), "failover phase must serve every ticket: {resolved:?}");
            requests += 1;
        }
    }
    let snap = latency.snapshot();
    let (p50, p95, p99) = (snap.quantile(0.50), snap.quantile(0.95), snap.quantile(0.99));
    let obs = router.obs().snapshot();
    let failovers = obs.counter("shard.replica.failovers").unwrap_or(0);
    let quarantined = obs.counter("shard.replica.quarantined").unwrap_or(0);
    let trips = obs.counter("shard.replica.trips").unwrap_or(0);

    println!(
        "\nfailover phase ({num_shards} shards × {replicas} replicas): {requests} requests, \
         {hosts_killed} primaries killed mid-load, 0 failed; {failovers} failovers, \
         {trips} breaker trips; latency (µs) p50 {p50} p95 {p95} p99 {p99}",
    );
    assert!(requests > 0, "failover phase must serve traffic");
    assert!(hosts_killed == num_shards, "every primary must have been killed");
    assert!(failovers >= 1, "a killed primary under load must register as a failover");
    assert!(p50 <= p95 && p95 <= p99, "failover percentiles must be monotone");

    drop(router);
    for group in hosts {
        for host in group {
            host.shutdown();
        }
    }

    Json::obj([
        ("shards", Json::Int(num_shards as i64)),
        ("replicas", Json::Int(replicas as i64)),
        ("requests", Json::Int(requests as i64)),
        ("failed", Json::Int(0)),
        ("hosts_killed", Json::Int(hosts_killed as i64)),
        ("failovers", Json::Int(failovers as i64)),
        ("quarantined", Json::Int(quarantined as i64)),
        ("breaker_trips", Json::Int(trips as i64)),
        (
            "latency_micros",
            Json::obj([
                ("p50", Json::Int(p50 as i64)),
                ("p95", Json::Int(p95 as i64)),
                ("p99", Json::Int(p99 as i64)),
                ("max", Json::Int(snap.max as i64)),
            ]),
        ),
    ])
}

/// Times the same small closed-loop workload twice — observability enabled
/// vs. [`ObsConfig::disabled`] — so the report carries the telemetry
/// layer's measured overhead. Each configuration runs one untimed warm-up
/// pass (thread pool + pooled descriptor construction) and then best-of-3
/// timed passes on the warm engine, the usual micro-benchmark estimator,
/// because a single sub-millisecond pass is at the mercy of one scheduler
/// hiccup.
fn obs_overhead_probe(rounds: usize) -> (Duration, Duration) {
    let run = |obs: ObsConfig| -> Duration {
        let a = rmat(8, 8, RmatParams::graph500(), 11);
        let n = a.ncols();
        let engine =
            Engine::load_with(a, PlusTimes, EngineConfig::default().max_lanes(16).obs(obs));
        let one_pass = |pass: usize| -> Duration {
            let t0 = Instant::now();
            for round in 0..rounds {
                let tickets: Vec<_> = (0..8)
                    .map(|i| {
                        let x: SparseVec<f64> = random_sparse_vec(
                            n,
                            16 + (round * 7 + i) % 32,
                            (pass * 31 + round * 97 + i) as u64,
                        );
                        engine.submit(MxvRequest::new(x))
                    })
                    .collect();
                engine.flush();
                for t in tickets {
                    t.wait_timeout(Duration::from_secs(10)).expect("overhead probe must serve");
                }
            }
            t0.elapsed()
        };
        one_pass(0); // warm-up, untimed
        (1..=3).map(one_pass).min().expect("three timed passes")
    };
    (run(ObsConfig::default()), run(ObsConfig::disabled()))
}

/// While traffic flows, keep re-arming short-lived one-shot faults across
/// the flush path: merge panics (degrade path), execute errors (retry
/// path), demux delays (deadline races). Guards drop every cycle, so an
/// unconsumed plan never leaks past the run.
#[cfg(feature = "failpoints")]
fn chaos_loop(stop: &AtomicBool) {
    use spmspv::failpoint::{self, FailAction};
    let mut cycle = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let _guard = match cycle % 3 {
            0 => failpoint::arm(
                "batch.merge",
                FailAction::Panic("load-gen chaos: merge panic".into()),
                Some(1),
            ),
            1 => failpoint::arm(
                "engine.flush.execute",
                FailAction::Error("load-gen chaos: execute error".into()),
                Some(1),
            ),
            _ => failpoint::arm(
                "engine.flush.demux",
                FailAction::Delay(Duration::from_millis(2)),
                Some(2),
            ),
        };
        std::thread::sleep(Duration::from_millis(3));
        cycle += 1;
    }
    failpoint::disarm_all();
}

fn main() {
    let smoke = std::env::var_os("ENGINE_LOAD_SMOKE").is_some();
    let scale = env_usize("ENGINE_LOAD_SCALE", if smoke { 8 } else { 12 }) as u32;
    let clients = env_usize("ENGINE_LOAD_CLIENTS", if smoke { 4 } else { 8 });
    let rounds = env_usize("ENGINE_LOAD_ROUNDS", if smoke { 12 } else { 40 });
    let shards = env_usize("ENGINE_LOAD_SHARDS", if smoke { 2 } else { 4 });
    let faults_armed = cfg!(feature = "failpoints");

    println!(
        "engine_load: closed-loop serving load generator (scale={scale}, {clients} clients × \
         {rounds} rounds{}{})",
        if faults_armed {
            ", faults armed"
        } else {
            ", no faults (build with --features failpoints)"
        },
        if smoke { ", SMOKE" } else { "" },
    );

    let a = rmat(scale, 12, RmatParams::graph500(), 7);
    let n = a.ncols();
    let nrows = a.nrows();
    let nnz = a.nnz();
    println!("graph: {n} vertices, {nnz} stored entries");

    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    // A deliberately tight queue: bursts of `clients × ≤4` requests against
    // `2 × clients` slots, so ShedOldest genuinely fires under load.
    let engine = Engine::load_with(
        a,
        PlusTimes,
        EngineConfig::default()
            .max_lanes(16)
            .queue_capacity(2 * clients)
            .overload_policy(OverloadPolicy::ShedOldest)
            .linger(Duration::from_micros(200))
            .options(SpMSpVOptions::with_threads(threads)),
    );

    let stop_chaos = AtomicBool::new(false);
    let t0 = Instant::now();
    let tally: Tally = engine.serve(|engine| {
        std::thread::scope(|scope| {
            #[cfg(feature = "failpoints")]
            scope.spawn(|| chaos_loop(&stop_chaos));

            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    scope.spawn(move || {
                        let session = engine.session();
                        let mut tally = Tally::default();
                        let mut reqno = 0usize;
                        for round in 0..rounds {
                            // Bursty arrivals: 1–4 requests, then claim all
                            // before the next round (closed loop).
                            let burst = 1 + (c + round) % 4;
                            let mut inflight = Vec::with_capacity(burst);
                            for _ in 0..burst {
                                reqno += 1;
                                let frontier: SparseVec<f64> = random_sparse_vec(
                                    n,
                                    16 + (reqno * 13) % 48,
                                    (c * 10_007 + reqno) as u64,
                                );
                                let mut req = MxvRequest::new(frontier);
                                if reqno.is_multiple_of(3) {
                                    let bits = MaskBits::from_indices(
                                        nrows,
                                        (c % 3..nrows).step_by(2 + reqno % 3),
                                    );
                                    req = req.mask(bits, MaskMode::Complement);
                                }
                                // Most deadlines are comfortable; every 5th
                                // is tight enough for injected delays (and
                                // plain queueing under overload) to expire.
                                let deadline = if reqno.is_multiple_of(5) {
                                    Duration::from_millis(3)
                                } else {
                                    Duration::from_millis(500)
                                };
                                let submitted = Instant::now();
                                let ticket = session.submit(req.timeout(deadline));
                                inflight.push((ticket, submitted));
                            }
                            for (ticket, submitted) in inflight {
                                // Bounded claim with generous slack past the
                                // request deadline: the harness must never
                                // hang on a lost ticket.
                                let resolved = ticket.wait_timeout(Duration::from_secs(10));
                                tally
                                    .latency
                                    .record(submitted.elapsed().as_micros().min(u64::MAX as u128)
                                        as u64);
                                match resolved {
                                    Ok(_) => tally.ok += 1,
                                    Err(EngineError::DeadlineExceeded) => {
                                        tally.deadline_exceeded += 1
                                    }
                                    Err(EngineError::Overloaded) => tally.overloaded += 1,
                                    Err(err) => {
                                        // KernelFailed past its retry, or a
                                        // WaitTimeout (which would be the
                                        // hang this harness hunts).
                                        assert!(
                                            !matches!(err, EngineError::WaitTimeout),
                                            "ticket unresolved after 10s: lost request"
                                        );
                                        tally.failed += 1;
                                    }
                                }
                            }
                        }
                        session.close();
                        tally
                    })
                })
                .collect();
            let mut total = Tally::default();
            for h in handles {
                total.absorb(h.join().expect("client thread panicked"));
            }
            stop_chaos.store(true, Ordering::Relaxed);
            total
        })
    });
    let wall = t0.elapsed();

    let stats = engine.stats();
    let latency = tally.latency.snapshot();
    let (p50, p95, p99) = (latency.quantile(0.50), latency.quantile(0.95), latency.quantile(0.99));
    let max = latency.max;
    let requests = tally.total();
    let shed_rate =
        if requests == 0 { 0.0 } else { (stats.shed + stats.rejected) as f64 / requests as f64 };

    println!(
        "\nserved {requests} requests in {:.1} ms: {} ok, {} deadline-exceeded, {} overloaded, \
         {} failed",
        wall.as_secs_f64() * 1e3,
        tally.ok,
        tally.deadline_exceeded,
        tally.overloaded,
        tally.failed,
    );
    println!(
        "latency (µs): p50 {p50}, p95 {p95}, p99 {p99}, max {max}; shed rate {:.1}%",
        shed_rate * 100.0
    );
    println!(
        "recovery: {} kernel failures survived, {} groups degraded to the oracle kernel",
        stats.panics_recovered, stats.degraded_flushes
    );
    println!("engine telemetry: {stats}");

    let sharded = sharded_phase(scale, shards, clients, if smoke { rounds } else { rounds / 2 });
    // The socket phase replays the sharded workload through ShardHost
    // daemons when asked for (`ENGINE_LOAD_REMOTE=1`); the committed
    // artifact is generated with it on.
    let remote = if std::env::var_os("ENGINE_LOAD_REMOTE").is_some() {
        remote_phase(scale, shards, clients, if smoke { rounds } else { rounds / 2 })
    } else {
        println!("\nremote phase skipped (set ENGINE_LOAD_REMOTE=1 to serve it over sockets)");
        Json::Null
    };
    let replicas = env_usize("ENGINE_LOAD_REPLICAS", 1);
    let failover = if replicas >= 2 {
        failover_phase(scale, shards, clients, if smoke { rounds } else { rounds / 2 }, replicas)
    } else {
        println!(
            "\nfailover phase skipped (set ENGINE_LOAD_REPLICAS=2 to kill primaries mid-load)"
        );
        Json::Null
    };

    let (obs_on, obs_off) = obs_overhead_probe(if smoke { 10 } else { 40 });
    let obs_ratio =
        if obs_off.is_zero() { 1.0 } else { obs_on.as_secs_f64() / obs_off.as_secs_f64() };
    println!(
        "obs overhead probe: enabled {:.2} ms vs disabled {:.2} ms ({:+.1}%)",
        obs_on.as_secs_f64() * 1e3,
        obs_off.as_secs_f64() * 1e3,
        (obs_ratio - 1.0) * 100.0,
    );

    let report = Json::obj([
        ("bench", Json::str("engine_load")),
        ("smoke", Json::Bool(smoke)),
        ("faults_armed", Json::Bool(faults_armed)),
        (
            "graph",
            Json::obj([
                ("generator", Json::str("rmat-graph500")),
                ("scale", Json::Int(scale as i64)),
                ("n", Json::Int(n as i64)),
                ("nnz", Json::Int(nnz as i64)),
            ]),
        ),
        ("clients", Json::Int(clients as i64)),
        ("rounds", Json::Int(rounds as i64)),
        ("requests", Json::Int(requests as i64)),
        ("wall_micros", Json::micros(wall)),
        (
            "outcomes",
            Json::obj([
                ("ok", Json::Int(tally.ok as i64)),
                ("deadline_exceeded", Json::Int(tally.deadline_exceeded as i64)),
                ("overloaded", Json::Int(tally.overloaded as i64)),
                ("failed", Json::Int(tally.failed as i64)),
            ]),
        ),
        (
            "latency_micros",
            Json::obj([
                ("p50", Json::Int(p50 as i64)),
                ("p95", Json::Int(p95 as i64)),
                ("p99", Json::Int(p99 as i64)),
                ("max", Json::Int(max as i64)),
            ]),
        ),
        ("shed_rate", Json::Num(shed_rate)),
        ("sharded", sharded),
        ("remote", remote),
        ("failover", failover),
        (
            "obs_overhead",
            Json::obj([
                ("enabled_micros", Json::micros(obs_on)),
                ("disabled_micros", Json::micros(obs_off)),
                ("ratio", Json::Num(obs_ratio)),
            ]),
        ),
        (
            "engine",
            Json::obj([
                ("shed", Json::Int(stats.shed as i64)),
                ("rejected", Json::Int(stats.rejected as i64)),
                ("timeouts", Json::Int(stats.timeouts as i64)),
                ("panics_recovered", Json::Int(stats.panics_recovered as i64)),
                ("degraded_flushes", Json::Int(stats.degraded_flushes as i64)),
                ("fused_batches", Json::Int(stats.fused_batches as i64)),
                ("lanes_executed", Json::Int(stats.lanes_executed as i64)),
                ("mean_lanes_per_batch", Json::Num(stats.mean_lanes_per_batch())),
            ]),
        ),
    ]);
    let out = std::env::var("BENCH_ENGINE_LOAD_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine_load.json").to_string()
    });
    std::fs::write(&out, report.render() + "\n").expect("write JSON report");
    println!("\nwrote {out}");

    // Smoke-lane shape assertions: the CI chaos lane runs this bin and then
    // validates the JSON, but the cheap invariants are asserted here too so
    // a broken run fails loudly at the source.
    assert_eq!(requests as u64, latency.count, "one latency sample per request");
    assert!(requests > 0 && tally.ok > 0, "a load run must serve something");
    assert!(p50 <= p95 && p95 <= p99 && p99 <= max, "percentiles must be monotone");
    if faults_armed {
        assert!(
            stats.panics_recovered > 0 || stats.timeouts > 0 || stats.shed > 0,
            "with faults armed, the chaos thread should have left a mark \
             (panics_recovered={}, timeouts={}, shed={})",
            stats.panics_recovered,
            stats.timeouts,
            stats.shed,
        );
    }
}
