//! Figure 4: strong scaling of four SpMSpV algorithms used inside BFS, on
//! every matrix of the Table IV suite (the paper's single-node Edison run).
//!
//! For each dataset and thread count, a full BFS from vertex 0 is executed
//! and the accumulated SpMSpV time (only) is reported, exactly as the paper
//! does.
//!
//! Usage: `cargo run --release -p spmspv-bench --bin figure4_bfs_scaling [small|large]`

use spmspv::{AlgorithmKind, SpMSpVOptions};
use spmspv_bench::datasets::{paper_suite, SuiteScale};
use spmspv_bench::platform_summary;
use spmspv_bench::report::{print_series_table, thread_sweep, Series};
use spmspv_graphs::bfs;

fn main() {
    let scale =
        std::env::args().nth(1).map(|s| SuiteScale::from_arg(&s)).unwrap_or(SuiteScale::Small);
    println!("{}", platform_summary());
    println!("Figure 4: SpMSpV time inside BFS, strong scaling over threads\n");

    let kinds = AlgorithmKind::paper_competitors();
    let sweep = thread_sweep();

    for d in paper_suite(scale) {
        println!(
            "=== {} ({}; {} vertices, {} edges) ===",
            d.paper_name,
            d.class,
            d.vertices(),
            d.edges() / 2
        );
        let mut series: Vec<Series> = kinds.iter().map(|k| Series::new(k.label())).collect();
        for &threads in &sweep {
            for (k, kind) in kinds.iter().enumerate() {
                let r = bfs(&d.matrix, 0, *kind, SpMSpVOptions::with_threads(threads));
                series[k].push(threads, r.spmspv_time);
            }
        }
        print_series_table("threads", &series);
        for s in &series {
            println!("  {:<16} 1->max speedup: {:.1}x", s.label, s.end_to_end_speedup());
        }
        println!();
    }
    println!("expected shape (Fig. 4): SpMSpV-bucket is fastest on every dataset and");
    println!("every concurrency; the gap over GraphMat is largest (3-10x) on the");
    println!("high-diameter graphs whose BFS frontiers stay very sparse.");
}
