//! Figure 5: strong scaling of three SpMSpV algorithms used in BFS on the
//! Intel KNL manycore processor.
//!
//! Substitution: we do not have a 64-core KNL; the experiment runs the same
//! three algorithms (GraphMat could not be run on KNL in the paper either)
//! on the four scale-free matrices of the suite, sweeping up to every
//! logical CPU this host exposes. The claim being checked is the *relative*
//! scalability: SpMSpV-bucket keeps scaling at high thread counts while
//! CombBLAS-SPA's parallel efficiency degrades because its work grows with t.
//!
//! Usage: `cargo run --release -p spmspv-bench --bin figure5_knl_scaling [small|large]`

use spmspv::{AlgorithmKind, SpMSpVOptions};
use spmspv_bench::datasets::{paper_suite, DatasetClass, SuiteScale};
use spmspv_bench::platform_summary;
use spmspv_bench::report::{print_series_table, thread_sweep, Series};
use spmspv_graphs::bfs;

fn main() {
    let scale =
        std::env::args().nth(1).map(|s| SuiteScale::from_arg(&s)).unwrap_or(SuiteScale::Small);
    println!("{}", platform_summary());
    println!("Figure 5: BFS SpMSpV time on a manycore sweep (KNL stand-in = this host)\n");

    // Figure 5 uses ljournal-2008, web-Google, wikipedia and wb-edu: the
    // scale-free family.
    let datasets: Vec<_> =
        paper_suite(scale).into_iter().filter(|d| d.class == DatasetClass::LowDiameter).collect();
    let kinds = [AlgorithmKind::Bucket, AlgorithmKind::CombBlasSpa, AlgorithmKind::CombBlasHeap];
    let sweep = thread_sweep();

    for d in &datasets {
        println!("=== {} ({} vertices, {} edges) ===", d.paper_name, d.vertices(), d.edges() / 2);
        let mut series: Vec<Series> = kinds.iter().map(|k| Series::new(k.label())).collect();
        for &threads in &sweep {
            for (k, kind) in kinds.iter().enumerate() {
                let r = bfs(&d.matrix, 0, *kind, SpMSpVOptions::with_threads(threads));
                series[k].push(threads, r.spmspv_time);
            }
        }
        print_series_table("threads", &series);
        for s in &series {
            println!("  {:<16} 1->max speedup: {:.1}x", s.label, s.end_to_end_speedup());
        }
        println!();
    }
    println!("expected shape (Fig. 5): on the paper's 64-core KNL, SpMSpV-bucket reaches");
    println!("20-49x speedup while CombBLAS-SPA saturates around 10-14x; on this host the");
    println!("absolute speedups are bounded by the available cores, but the bucket");
    println!("algorithm should retain the best end-to-end speedup of the three.");
}
