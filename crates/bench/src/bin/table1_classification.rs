//! Table I: classification of parallel SpMSpV algorithms.
//!
//! Prints the classification table populated from the algorithms actually
//! implemented in this workspace, and validates the complexity claims with a
//! measured single-thread runtime at two input-vector densities (a
//! matrix-driven algorithm's runtime barely changes, a vector-driven one's
//! runtime scales with nnz(x)).

use sparse_substrate::gen::random_sparse_vec;
use sparse_substrate::PlusTimes;
use spmspv::ops::Mxv;
use spmspv::AlgorithmKind;
use spmspv::SpMSpVOptions;
use spmspv_bench::datasets::{ljournal_standin, SuiteScale};
use spmspv_bench::report::best_of;

fn main() {
    println!("Table I: classification of SpMSpV algorithms (as implemented here)\n");
    println!(
        "{:<16} {:<14} {:<8} {:<10} {:<9} {:<22} parallelization",
        "algorithm", "class", "matrix", "vector", "merging", "sequential complexity",
    );
    let rows = [
        (
            AlgorithmKind::GraphMat,
            "matrix-driven",
            "DCSC",
            "bitvector",
            "SPA",
            "O(nzc + df)",
            "row-split, private SPA",
        ),
        (
            AlgorithmKind::CombBlasSpa,
            "vector-driven",
            "DCSC",
            "list",
            "SPA",
            "O(df)",
            "row-split, private SPA",
        ),
        (
            AlgorithmKind::CombBlasHeap,
            "vector-driven",
            "DCSC",
            "list",
            "heap",
            "O(df lg f)",
            "row-split, private heap",
        ),
        (
            AlgorithmKind::SortBased,
            "vector-driven",
            "CSC",
            "list",
            "sorting",
            "O(df lg df)",
            "concatenate, sort, prune",
        ),
        (
            AlgorithmKind::Bucket,
            "vector-driven",
            "CSC",
            "list",
            "buckets",
            "O(df)",
            "2-step merge, private SPA",
        ),
    ];
    for (kind, class, matrix, vector, merging, seq, par) in rows {
        println!(
            "{:<16} {:<14} {:<8} {:<10} {:<9} {:<22} {}",
            kind.label(),
            class,
            matrix,
            vector,
            merging,
            seq,
            par
        );
    }

    // Empirical sanity check of the matrix-driven vs vector-driven split.
    println!("\nempirical check (1 thread, ljournal stand-in):");
    let d = ljournal_standin(SuiteScale::Small);
    let n = d.matrix.ncols();
    println!(
        "{:<16} {:>18} {:>18} {:>8}",
        "algorithm", "t(nnz(x)=64) ms", "t(nnz(x)=n/4) ms", "ratio"
    );
    for kind in [
        AlgorithmKind::Bucket,
        AlgorithmKind::CombBlasSpa,
        AlgorithmKind::CombBlasHeap,
        AlgorithmKind::GraphMat,
        AlgorithmKind::SortBased,
    ] {
        let sparse_x = random_sparse_vec(n, 64, 1);
        let dense_x = random_sparse_vec(n, n / 4, 2);
        let mut op = Mxv::over(&d.matrix)
            .semiring(&PlusTimes)
            .algorithm(kind)
            .options(SpMSpVOptions::with_threads(1))
            .prepare::<f64>();
        let t_sparse = best_of(3, || op.run(&sparse_x));
        let t_dense = best_of(3, || op.run(&dense_x));
        println!(
            "{:<16} {:>18.3} {:>18.3} {:>8.1}",
            kind.label(),
            t_sparse.as_secs_f64() * 1e3,
            t_dense.as_secs_f64() * 1e3,
            t_dense.as_secs_f64() / t_sparse.as_secs_f64().max(1e-12)
        );
    }
    println!("\na matrix-driven algorithm (GraphMat) shows a small ratio: its runtime is");
    println!("dominated by the O(nzc) column scan and barely depends on nnz(x); the");
    println!("vector-driven algorithms show much larger ratios.");
}
