//! Figure 6: strong scaling of the four components of the SpMSpV-bucket
//! algorithm (estimate, bucketing, SPA merge, output) for three input-vector
//! densities.
//!
//! Usage: `cargo run --release -p spmspv-bench --bin figure6_step_breakdown [small|large]`

use sparse_substrate::gen::random_sparse_vec;
use sparse_substrate::PlusTimes;
use spmspv::{SpMSpVBucket, SpMSpVOptions, StepTimings};
use spmspv_bench::datasets::{ljournal_standin, SuiteScale};
use spmspv_bench::platform_summary;
use spmspv_bench::report::thread_sweep;

fn main() {
    let scale =
        std::env::args().nth(1).map(|s| SuiteScale::from_arg(&s)).unwrap_or(SuiteScale::Small);
    println!("{}", platform_summary());
    let d = ljournal_standin(scale);
    let n = d.matrix.ncols();
    println!("Figure 6: per-step breakdown of SpMSpV-bucket on the {} stand-in\n", d.paper_name);

    // Paper: nnz(x) = 200, 10K, 2.5M on a 5.36M-vertex graph; keep the same
    // absolute very-sparse point and scale the other two by density.
    let densities = [
        ("nnz(x)=200", 200usize),
        ("nnz(x)~0.2%", (n as f64 * 0.002).max(256.0) as usize),
        ("nnz(x)~47%", (n as f64 * 0.47) as usize),
    ];

    for (label, f) in densities {
        println!("--- {label} (f = {f}) ---");
        let x = random_sparse_vec(n, f, 13);
        println!(
            "{:>8} {:>14} {:>14} {:>14} {:>14} {:>14}",
            "threads", "estimate", "bucketing", "SPA-merge", "output", "total"
        );
        let mut one_thread: Option<StepTimings> = None;
        for threads in thread_sweep() {
            let mut alg = SpMSpVBucket::new(&d.matrix, SpMSpVOptions::with_threads(threads));
            // best-of-3 on the whole multiplication, reporting its breakdown
            let mut best: Option<StepTimings> = None;
            for _ in 0..3 {
                let (_, t) = alg.multiply_with_timings(&x, &PlusTimes);
                if best.map(|b| t.total() < b.total()).unwrap_or(true) {
                    best = Some(t);
                }
            }
            let t = best.expect("three repetitions ran");
            if threads == 1 {
                one_thread = Some(t);
            }
            println!(
                "{:>8} {:>11.3} ms {:>11.3} ms {:>11.3} ms {:>11.3} ms {:>11.3} ms",
                threads,
                t.estimate.as_secs_f64() * 1e3,
                t.bucketing.as_secs_f64() * 1e3,
                t.merge.as_secs_f64() * 1e3,
                t.output.as_secs_f64() * 1e3,
                t.total().as_secs_f64() * 1e3
            );
        }
        if let Some(t1) = one_thread {
            let f1 = t1.fractions();
            println!(
                "single-thread shares: estimate {:.0}%, bucketing {:.0}%, merge {:.0}%, output {:.0}%",
                f1[0] * 100.0,
                f1[1] * 100.0,
                f1[2] * 100.0,
                f1[3] * 100.0
            );
        }
        println!();
    }
    println!("expected shape (Fig. 6): SPA-merge dominates the sequential runtime and");
    println!("scales best (private per-bucket work); bucketing's share grows with nnz(x)");
    println!("and its scaling is limited by irregular writes, so it dominates at high");
    println!("thread counts; for the very sparse vector the parallel overheads dominate");
    println!("and some steps stop scaling altogether.");
}
