//! Ablation: number of buckets per thread.
//!
//! §III-A ("Load balancing"): the paper uses `nb = 4t` buckets and dynamic
//! scheduling, claiming more buckets than threads improves load balance
//! except when the vector is extremely sparse. This ablation sweeps the
//! buckets-per-thread factor at full concurrency for three vector densities.
//!
//! Usage: `cargo run --release -p spmspv-bench --bin ablation_buckets [small|large]`

use sparse_substrate::gen::random_sparse_vec;
use sparse_substrate::PlusTimes;
use spmspv::{SpMSpV, SpMSpVBucket, SpMSpVOptions};
use spmspv_bench::datasets::{ljournal_standin, SuiteScale};
use spmspv_bench::report::best_of;

fn main() {
    let scale =
        std::env::args().nth(1).map(|s| SuiteScale::from_arg(&s)).unwrap_or(SuiteScale::Small);
    let d = ljournal_standin(scale);
    let n = d.matrix.ncols();
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    println!(
        "Ablation: buckets per thread (nb = k*t), {} stand-in, {threads} threads\n",
        d.paper_name
    );

    let densities = [200usize, (n as f64 * 0.002) as usize, (n as f64 * 0.25) as usize];
    print!("{:>16}", "buckets/thread");
    for f in densities {
        print!("  {:>16}", format!("nnz(x)={f}"));
    }
    println!();
    for k in [1usize, 2, 4, 8, 16] {
        print!("{k:>16}");
        for f in densities {
            let x = random_sparse_vec(n, f, f as u64 + 1);
            let mut alg = SpMSpVBucket::new(
                &d.matrix,
                SpMSpVOptions::with_threads(threads).buckets_per_thread(k),
            );
            let t = best_of(3, || alg.multiply(&x, &PlusTimes));
            print!("  {:>13.3} ms", t.as_secs_f64() * 1e3);
        }
        println!();
    }
    println!("\nexpected shape: k = 4 (the paper's default) is at or near the best for");
    println!("moderate-to-dense vectors; very sparse vectors prefer fewer buckets because");
    println!("per-bucket management overhead dominates the tiny amount of merge work.");
}
