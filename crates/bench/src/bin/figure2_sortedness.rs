//! Figure 2: impact of sorted input/output vectors on the SpMSpV-bucket
//! algorithm.
//!
//! The paper multiplies ljournal-2008 by vectors with 10K and 2.5M nonzeros
//! (≈0.2% and ≈47% density) while sweeping 1–24 cores. We reproduce the same
//! two density points relative to our stand-in graph's size.
//!
//! Usage: `cargo run --release -p spmspv-bench --bin figure2_sortedness [small|large]`

use sparse_substrate::gen::random_sparse_vec;
use sparse_substrate::PlusTimes;
use spmspv::{SpMSpV, SpMSpVBucket, SpMSpVOptions};
use spmspv_bench::datasets::{ljournal_standin, SuiteScale};
use spmspv_bench::platform_summary;
use spmspv_bench::report::{best_of, print_series_table, thread_sweep, Series};

fn main() {
    let scale =
        std::env::args().nth(1).map(|s| SuiteScale::from_arg(&s)).unwrap_or(SuiteScale::Small);
    println!("{}", platform_summary());
    let d = ljournal_standin(scale);
    let n = d.matrix.ncols();
    println!(
        "Figure 2: sorted vs unsorted vectors, {} stand-in ({} vertices, {} edges)\n",
        d.paper_name,
        n,
        d.edges() / 2
    );

    // Paper: nnz(x) = 10K (~0.2% of 5.36M) and 2.5M (~47%).
    let sparse_f = (n as f64 * 0.002).max(64.0) as usize;
    let dense_f = (n as f64 * 0.47) as usize;

    for (label, f) in [("sparse", sparse_f), ("dense", dense_f)] {
        println!("--- {label} input: nnz(x) = {f} ---");
        // Each variant receives the vector in its own convention, as in the
        // paper: the sorted variant keeps x and y sorted throughout an
        // iterative algorithm, the unsorted variant never sorts.
        let x_unsorted = random_sparse_vec(n, f, 7);
        let x_sorted = x_unsorted.sorted();
        let mut sorted_series = Series::new("with sorting");
        let mut unsorted_series = Series::new("without sorting");
        for threads in thread_sweep() {
            let mut sorted_alg =
                SpMSpVBucket::new(&d.matrix, SpMSpVOptions::with_threads(threads).sorted(true));
            let mut unsorted_alg =
                SpMSpVBucket::new(&d.matrix, SpMSpVOptions::with_threads(threads).sorted(false));
            sorted_series.push(threads, best_of(3, || sorted_alg.multiply(&x_sorted, &PlusTimes)));
            unsorted_series
                .push(threads, best_of(3, || unsorted_alg.multiply(&x_unsorted, &PlusTimes)));
        }
        print_series_table("threads", &[sorted_series, unsorted_series]);
        println!();
    }
    println!("expected shape (Fig. 2): the two variants are close for sparse inputs;");
    println!("for dense inputs the sorted variant wins thanks to more sequential column");
    println!("accesses during bucketing, and never loses.");
}
