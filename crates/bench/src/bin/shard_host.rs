//! `shard_host`: a standalone shard daemon for the remote serving fleet.
//!
//! Loads one shard's column slice of a deterministic R-MAT graph into a
//! [`ShardHost`] and serves the wire protocol until killed. Start one per
//! shard (same `--scale`/`--seed`/`--shards` on every host so the fleet
//! agrees on the graph and the plan), then point a router at the printed
//! addresses with [`ShardedEngine::connect`] — or run
//! `cargo run --example remote_shards`, which does all of this in one go.
//!
//! ```text
//! cargo run --release -p spmspv-bench --bin shard_host -- \
//!     --shard 0 --shards 3 [--listen 127.0.0.1:7070] [--scale 12] \
//!     [--edge-factor 12] [--seed 7] [--semiring plus-times|min-plus] \
//!     [--max-lanes 16]
//! ```
//!
//! Flags:
//!
//! | flag | default | meaning |
//! |---|---|---|
//! | `--shard <s>` | required | this host's shard index in `0..shards` |
//! | `--shards <k>` | required | fleet size; fixes the balanced column plan |
//! | `--listen <addr>` | `127.0.0.1:0` | bind address (port 0 = ephemeral) |
//! | `--scale <p>` | `12` | R-MAT scale (`2^p` vertices) |
//! | `--edge-factor <f>` | `12` | R-MAT edges per vertex |
//! | `--seed <s>` | `7` | R-MAT seed |
//! | `--semiring <name>` | `plus-times` | `plus-times` or `min-plus` |
//! | `--max-lanes <l>` | `16` | engine lane budget (`0` = unbounded) |
//!
//! The bound address is printed as `LISTENING <addr>` once the engine is
//! loaded, so wrappers can harvest ephemeral ports. The daemon answers the
//! discovery handshake with its shard id, column range, and the slice's
//! structural fingerprint, so a router dialing a host started with the
//! wrong `--shard`/`--scale`/`--seed` rejects it at dial time instead of
//! merging wrong partials. It serves until the process is killed; routers
//! that lose it mid-flush fail over to a replica if one exists, otherwise
//! fail exactly the tickets routed here and re-dial once a replacement
//! binds the same port. Start several hosts with the same `--shard` and
//! hand [`ShardedEngine::connect_replicated`] one address group per shard
//! to get failover.
//!
//! [`ShardedEngine::connect_replicated`]: spmspv::shard::ShardedEngine::connect_replicated
//!
//! [`ShardHost`]: spmspv::net::ShardHost
//! [`ShardedEngine::connect`]: spmspv::shard::ShardedEngine::connect

use std::io::Write;

use sparse_substrate::gen::{rmat, RmatParams};
use sparse_substrate::{MinPlus, PlusTimes, Scalar, Semiring};
use spmspv::engine::EngineConfig;
use spmspv::net::{ShardHost, WireScalar};
use spmspv::shard::ShardPlan;

struct Args {
    listen: String,
    shard: usize,
    shards: usize,
    scale: u32,
    edge_factor: usize,
    seed: u64,
    semiring: String,
    max_lanes: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: shard_host --shard <s> --shards <k> [--listen ADDR] [--scale P] \
         [--edge-factor F] [--seed S] [--semiring plus-times|min-plus] [--max-lanes L]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: "127.0.0.1:0".into(),
        shard: usize::MAX,
        shards: 0,
        scale: 12,
        edge_factor: 12,
        seed: 7,
        semiring: "plus-times".into(),
        max_lanes: 16,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--listen" => args.listen = value(),
            "--shard" => args.shard = value().parse().unwrap_or_else(|_| usage()),
            "--shards" => args.shards = value().parse().unwrap_or_else(|_| usage()),
            "--scale" => args.scale = value().parse().unwrap_or_else(|_| usage()),
            "--edge-factor" => args.edge_factor = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--semiring" => args.semiring = value(),
            "--max-lanes" => args.max_lanes = value().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if args.shard == usize::MAX || args.shards == 0 || args.shard >= args.shards {
        usage()
    }
    args
}

fn serve<S>(args: &Args, semiring: S)
where
    S: Semiring<f64, f64> + Clone + 'static,
    S::Output: WireScalar + Scalar,
{
    let a = rmat(args.scale, args.edge_factor, RmatParams::graph500(), args.seed);
    let plan = ShardPlan::balanced(&a, args.shards);
    if args.shard >= plan.num_shards() {
        eprintln!(
            "shard {} collapsed out of the plan ({} effective shards on this graph)",
            args.shard,
            plan.num_shards()
        );
        std::process::exit(1);
    }
    let part = a.column_split(plan.bounds()).swap_remove(args.shard);
    println!(
        "shard {}/{}: columns {:?} of {} ({} nnz), semiring {}",
        args.shard,
        plan.num_shards(),
        plan.range(args.shard),
        a.ncols(),
        part.nnz(),
        args.semiring,
    );
    let host = ShardHost::bind(
        &args.listen as &str,
        args.shard,
        plan.range(args.shard),
        part,
        semiring,
        EngineConfig::default().max_lanes(args.max_lanes),
    )
    .expect("bind the listen address");
    println!("LISTENING {}", host.local_addr().expect("bound listener has an address"));
    std::io::stdout().flush().expect("announce the address");
    host.run();
}

fn main() {
    let args = parse_args();
    match args.semiring.as_str() {
        "plus-times" => serve(&args, PlusTimes),
        "min-plus" => serve(&args, MinPlus),
        other => {
            eprintln!("unknown semiring {other:?} (expected plus-times or min-plus)");
            usage()
        }
    }
}
