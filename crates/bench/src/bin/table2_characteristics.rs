//! Table II: work-efficiency characteristics of SpMSpV parallelization
//! strategies, measured rather than asserted.
//!
//! For each algorithm family the harness computes the exact work performed
//! (multiplications + column probes + vector scans + SPA initializations) on
//! the same operands and reports it as a multiple of the paper's lower bound
//! `d·f`, at 1 thread and at the machine's full thread count.

use sparse_substrate::gen::{erdos_renyi, random_sparse_vec};
use spmspv::stats::{analyze, WorkStats};
use spmspv::AlgorithmKind;

fn main() {
    let n = 100_000;
    let d = 8.0;
    let a = erdos_renyi(n, d, 11);
    let max_threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);

    println!("Table II: measured work ratios (total work / lower bound d*f)");
    println!("matrix: Erdos-Renyi n={n}, d={d}; lower bound counted exactly per input\n");

    for &f in &[64usize, 1_000, 10_000, n / 4] {
        let x = random_sparse_vec(n, f, f as u64);
        let lb = WorkStats::lower_bound(&a, &x);
        println!("nnz(x) = {f}  (lower bound d*f = {lb} scalar multiplications)");
        println!(
            "  {:<16} {:>14} {:>14} {:>24}",
            "algorithm", "ratio @ 1 thr", "ratio @ max", "work-efficient?"
        );
        for kind in [
            AlgorithmKind::Bucket,
            AlgorithmKind::Sequential,
            AlgorithmKind::CombBlasSpa,
            AlgorithmKind::CombBlasHeap,
            AlgorithmKind::GraphMat,
            AlgorithmKind::SortBased,
        ] {
            let w1 = analyze(kind, &a, &x, 1);
            let wmax = analyze(kind, &a, &x, max_threads);
            let grows = wmax.total_work() > w1.total_work();
            println!(
                "  {:<16} {:>14.2} {:>14.2} {:>24}",
                kind.label(),
                w1.work_ratio(lb),
                wmax.work_ratio(lb),
                if grows { "no (work grows with t)" } else { "yes" }
            );
        }
        println!();
    }
    println!("expected shape (Table II of the paper): the bucket algorithm and the");
    println!("sequential SPA stay within a constant factor of the lower bound at any");
    println!("thread count; the row-split algorithms' work grows linearly with t; the");
    println!("matrix-driven algorithm pays O(nzc) regardless of nnz(x).");
}
