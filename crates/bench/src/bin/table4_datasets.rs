//! Table IV: the benchmark dataset suite.
//!
//! Prints, for every synthetic stand-in of a University of Florida matrix,
//! the vertex count, edge count and pseudo-diameter — the three columns of
//! Table IV in the paper.
//!
//! Usage: `cargo run --release -p spmspv-bench --bin table4_datasets [small|large]`

use spmspv_bench::datasets::{paper_suite, SuiteScale};
use spmspv_bench::platform_summary;
use spmspv_graphs::pseudo_diameter;

fn main() {
    let scale =
        std::env::args().nth(1).map(|s| SuiteScale::from_arg(&s)).unwrap_or(SuiteScale::Small);
    println!("{}", platform_summary());
    println!("Table IV stand-in: synthetic dataset suite ({scale:?} scale)\n");
    println!(
        "{:<22} {:<28} {:<14} {:>10} {:>12} {:>10}",
        "paper dataset", "generator", "class", "#vertices", "#edges", "pseudo-dia"
    );
    for d in paper_suite(scale) {
        let diameter = pseudo_diameter(&d.matrix, 0, 2);
        println!(
            "{:<22} {:<28} {:<14} {:>10} {:>12} {:>10}",
            d.paper_name,
            d.generator,
            d.class.to_string(),
            d.vertices(),
            d.edges() / 2,
            diameter
        );
    }
    println!();
    println!("note: sizes are scaled down from the paper's multi-million-vertex matrices");
    println!("      so the suite runs on a laptop; the low/high-diameter split and the");
    println!("      degree skew of each family are preserved (see DESIGN.md).");
}
