//! Shared utilities for the benchmark harness (dataset suite, thread sweeps,
//! result table printing). The figure/table binaries in `src/bin/` and the
//! Criterion benches in `benches/` both build on this module.

pub mod datasets;
pub mod platform;
pub mod report;

pub use datasets::{paper_suite, Dataset, DatasetClass};
pub use platform::platform_summary;
pub use report::{geomean, thread_sweep, Json, Series};
