//! The benchmark dataset suite, mirroring Table IV of the paper.
//!
//! The paper evaluates on eleven University of Florida matrices. Those files
//! cannot be redistributed, so the suite below substitutes synthetic
//! generators with matched sparsity character (see `DESIGN.md` for the
//! mapping and the argument why the substitution preserves the experiments'
//! behaviour). Scales are reduced so the whole suite fits comfortably in a
//! laptop's memory; pass `--scale large` to the binaries for bigger graphs.
//!
//! Real `.mtx` files can be loaded with `sparse_substrate::mmio` to run the
//! same harness on the original matrices.

use sparse_substrate::gen::{grid2d, grid3d, random_geometric, rmat, triangular_mesh, RmatParams};
use sparse_substrate::CscMatrix;

/// The two dataset families of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetClass {
    /// Scale-free graphs with small pseudo-diameter (social networks, web
    /// crawls): BFS reaches dense frontiers within a few levels.
    LowDiameter,
    /// Meshes, circuits and geometric graphs with large pseudo-diameter:
    /// BFS frontiers stay very sparse for thousands of levels.
    HighDiameter,
}

impl std::fmt::Display for DatasetClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetClass::LowDiameter => f.write_str("low-diameter"),
            DatasetClass::HighDiameter => f.write_str("high-diameter"),
        }
    }
}

/// One benchmark graph: a synthetic stand-in for a Table IV matrix.
pub struct Dataset {
    /// Name of the University of Florida matrix this stands in for.
    pub paper_name: &'static str,
    /// Short description of the generator used.
    pub generator: &'static str,
    /// Dataset family.
    pub class: DatasetClass,
    /// The adjacency matrix.
    pub matrix: CscMatrix<f64>,
}

impl Dataset {
    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.matrix.ncols()
    }

    /// Number of stored edges (directed count, i.e. matrix nonzeros).
    pub fn edges(&self) -> usize {
        self.matrix.nnz()
    }
}

/// Relative size of the generated suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteScale {
    /// Quick suite for CI / laptops (default).
    Small,
    /// Larger suite closer (but still far from equal) to the paper's sizes.
    Large,
}

impl SuiteScale {
    /// Parses `"small"` / `"large"` (case-insensitive); anything else is
    /// `Small`.
    pub fn from_arg(s: &str) -> Self {
        if s.eq_ignore_ascii_case("large") {
            SuiteScale::Large
        } else {
            SuiteScale::Small
        }
    }
}

/// Builds the full eleven-graph suite of Table IV at the requested scale.
pub fn paper_suite(scale: SuiteScale) -> Vec<Dataset> {
    let boost: u32 = match scale {
        SuiteScale::Small => 0,
        SuiteScale::Large => 2,
    };
    let side = |s: usize| match scale {
        SuiteScale::Small => s,
        SuiteScale::Large => s * 2,
    };
    vec![
        Dataset {
            paper_name: "amazon0312",
            generator: "R-MAT (web-like skew)",
            class: DatasetClass::LowDiameter,
            matrix: rmat(14 + boost, 8, RmatParams::web_like(), 101),
        },
        Dataset {
            paper_name: "web-Google",
            generator: "R-MAT (web-like skew)",
            class: DatasetClass::LowDiameter,
            matrix: rmat(15 + boost, 6, RmatParams::web_like(), 102),
        },
        Dataset {
            paper_name: "wikipedia-20070206",
            generator: "R-MAT (Graph500 skew)",
            class: DatasetClass::LowDiameter,
            matrix: rmat(15 + boost, 12, RmatParams::graph500(), 103),
        },
        Dataset {
            paper_name: "ljournal-2008",
            generator: "R-MAT (Graph500 skew)",
            class: DatasetClass::LowDiameter,
            matrix: rmat(16 + boost, 14, RmatParams::graph500(), 104),
        },
        Dataset {
            paper_name: "wb-edu",
            generator: "R-MAT (web-like skew)",
            class: DatasetClass::LowDiameter,
            matrix: rmat(16 + boost, 6, RmatParams::web_like(), 105),
        },
        Dataset {
            paper_name: "dielFilterV3real",
            generator: "3D grid (7-point stencil)",
            class: DatasetClass::HighDiameter,
            matrix: grid3d(side(34), side(34), side(34)),
        },
        Dataset {
            paper_name: "G3_circuit",
            generator: "3D grid (7-point stencil)",
            class: DatasetClass::HighDiameter,
            matrix: grid3d(side(38), side(38), side(38)),
        },
        Dataset {
            paper_name: "hugetric-00020",
            generator: "triangular mesh",
            class: DatasetClass::HighDiameter,
            matrix: triangular_mesh(side(300), side(300)),
        },
        Dataset {
            paper_name: "hugetrace-00020",
            generator: "triangular mesh",
            class: DatasetClass::HighDiameter,
            matrix: triangular_mesh(side(360), side(360)),
        },
        Dataset {
            paper_name: "delaunay_n24",
            generator: "triangular mesh",
            class: DatasetClass::HighDiameter,
            matrix: triangular_mesh(side(330), side(330)),
        },
        Dataset {
            paper_name: "rgg_n_2_24_s0",
            generator: "random geometric graph",
            class: DatasetClass::HighDiameter,
            matrix: random_geometric(
                match scale {
                    SuiteScale::Small => 60_000,
                    SuiteScale::Large => 250_000,
                },
                1.5,
                106,
            ),
        },
    ]
}

/// The single graph used by the single-matrix experiments (Figures 2, 3
/// and 6 all multiply the `ljournal-2008` adjacency matrix); we use the
/// largest scale-free graph in the suite as its stand-in.
pub fn ljournal_standin(scale: SuiteScale) -> Dataset {
    let boost: u32 = match scale {
        SuiteScale::Small => 0,
        SuiteScale::Large => 2,
    };
    Dataset {
        paper_name: "ljournal-2008",
        generator: "R-MAT (Graph500 skew)",
        class: DatasetClass::LowDiameter,
        matrix: rmat(16 + boost, 14, RmatParams::graph500(), 104),
    }
}

/// A small 2D-grid dataset used by quick smoke tests of the harness itself.
pub fn tiny_mesh() -> Dataset {
    Dataset {
        paper_name: "tiny-mesh (test only)",
        generator: "2D grid",
        class: DatasetClass::HighDiameter,
        matrix: grid2d(40, 40),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eleven_graphs_matching_table_iv() {
        let suite = paper_suite(SuiteScale::Small);
        assert_eq!(suite.len(), 11);
        let low = suite.iter().filter(|d| d.class == DatasetClass::LowDiameter).count();
        let high = suite.iter().filter(|d| d.class == DatasetClass::HighDiameter).count();
        assert_eq!(low, 5);
        assert_eq!(high, 6);
        for d in &suite {
            assert!(d.vertices() > 0);
            assert!(d.edges() > d.vertices(), "{} is suspiciously sparse", d.paper_name);
            d.matrix.validate().unwrap();
        }
    }

    #[test]
    fn scale_flag_parses() {
        assert_eq!(SuiteScale::from_arg("large"), SuiteScale::Large);
        assert_eq!(SuiteScale::from_arg("LARGE"), SuiteScale::Large);
        assert_eq!(SuiteScale::from_arg("small"), SuiteScale::Small);
        assert_eq!(SuiteScale::from_arg("bogus"), SuiteScale::Small);
    }

    #[test]
    fn ljournal_standin_is_scale_free() {
        let d = ljournal_standin(SuiteScale::Small);
        let avg = d.matrix.avg_column_degree();
        let max = d.matrix.max_column_degree() as f64;
        assert!(max > 4.0 * avg, "stand-in should have skewed degrees");
    }
}
