//! Small helpers for running thread sweeps, printing figure-style tables,
//! and emitting machine-readable JSON reports. The JSON value type lives in
//! [`spmspv::obs::json`] (the observability layer exports snapshots through
//! it); it is re-exported here so bench binaries keep importing
//! `spmspv_bench::report::Json`.

use std::time::{Duration, Instant};

pub use spmspv::obs::json::Json;

/// One named series of `(x, milliseconds)` points, e.g. one line of a
/// figure ("SpMSpV-bucket" runtime vs. core count).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, time)` points; `x` is thread count, `nnz(x)`, etc.
    pub points: Vec<(usize, Duration)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series { label: label.into(), points: Vec::new() }
    }

    /// Appends a point.
    pub fn push(&mut self, x: usize, time: Duration) {
        self.points.push((x, time));
    }

    /// Speedup of the last point relative to the first (e.g. 1-thread to
    /// max-thread speedup), or 0.0 if fewer than two points exist.
    pub fn end_to_end_speedup(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some((_, t1)), Some((_, tn))) if tn.as_secs_f64() > 0.0 => {
                t1.as_secs_f64() / tn.as_secs_f64()
            }
            _ => 0.0,
        }
    }
}

/// Prints a set of series as a column-aligned table:
/// first column is `x`, one column per series.
pub fn print_series_table(x_label: &str, series: &[Series]) {
    print!("{:>12}", x_label);
    for s in series {
        print!("  {:>16}", s.label);
    }
    println!();
    let rows = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for r in 0..rows {
        let x = series.iter().find_map(|s| s.points.get(r).map(|&(x, _)| x)).unwrap_or(0);
        print!("{x:>12}");
        for s in series {
            match s.points.get(r) {
                Some((_, t)) => print!("  {:>13.3} ms", t.as_secs_f64() * 1e3),
                None => print!("  {:>16}", "-"),
            }
        }
        println!();
    }
}

/// The thread counts to sweep on this machine: 1, 2, 4, … up to the number
/// of logical CPUs (always including the maximum itself).
pub fn thread_sweep() -> Vec<usize> {
    let max = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut out = Vec::new();
    let mut t = 1usize;
    while t < max {
        out.push(t);
        t *= 2;
    }
    out.push(max);
    out.dedup();
    out
}

/// Times `f`, returning its result and the elapsed wall-clock time.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Runs `f` `reps` times and returns the minimum elapsed time (the usual
/// "best of N" micro-benchmark estimator).
pub fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let (_, t) = timed(&mut f);
        best = best.min(t);
    }
    best
}

/// Geometric mean of a set of ratios.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_reexport_is_the_obs_type() {
        // The real Json tests live in `spmspv::obs::json`; this guards the
        // re-export path bench binaries rely on.
        assert_eq!(Json::micros(Duration::from_micros(250)).render(), "250.0");
    }

    #[test]
    fn series_speedup() {
        let mut s = Series::new("x");
        s.push(1, Duration::from_millis(100));
        s.push(8, Duration::from_millis(20));
        assert!((s.end_to_end_speedup() - 5.0).abs() < 1e-9);
        assert_eq!(Series::new("empty").end_to_end_speedup(), 0.0);
    }

    #[test]
    fn thread_sweep_is_increasing_and_ends_at_max() {
        let sweep = thread_sweep();
        assert!(!sweep.is_empty());
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(
            *sweep.last().unwrap(),
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        );
    }

    #[test]
    fn geomean_of_equal_values_is_that_value() {
        assert!((geomean(&[4.0, 4.0, 4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn best_of_returns_a_plausible_duration() {
        let d = best_of(3, || std::thread::sleep(Duration::from_millis(1)));
        assert!(d >= Duration::from_millis(1));
    }
}
