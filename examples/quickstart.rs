//! Quickstart: describe a sparse matrix × sparse vector multiplication with
//! the unified `Mxv` operation descriptor, run it (work-efficient
//! SpMSpV-bucket under the hood), and compare against the definition-level
//! reference — then mask it, then batch it, all on the same descriptor.
//!
//! Run with: `cargo run --release --example quickstart`

use sparse_substrate::gen::{erdos_renyi, random_sparse_vec};
use sparse_substrate::ops::spmspv_reference;
use sparse_substrate::{PlusTimes, SparseVecBatch};
use spmspv::ops::Mxv;
use spmspv::{MaskMode, SpMSpVOptions};

fn main() {
    // An Erdős–Rényi matrix with n = 100k columns and ~8 nonzeros per column,
    // the model the paper uses for its complexity analysis.
    let n = 100_000;
    let a = erdos_renyi(n, 8.0, 42);
    println!(
        "matrix: {} x {} with {} nonzeros (avg column degree {:.2})",
        a.nrows(),
        a.ncols(),
        a.nnz(),
        a.avg_column_degree()
    );

    // A sparse input vector with 1% density.
    let x = random_sparse_vec(n, n / 100, 7);
    println!("input vector: nnz(x) = {}", x.nnz());

    // Describe the operation once; prepare() compiles it into a reusable
    // descriptor (the kernel and its workspaces are allocated on first run
    // and recycled afterwards).
    let mut op = Mxv::over(&a).semiring(&PlusTimes).options(SpMSpVOptions::default()).prepare();
    let start = std::time::Instant::now();
    let y = op.run(&x);
    let elapsed = start.elapsed();
    println!(
        "SpMSpV-bucket via Mxv: nnz(y) = {} computed in {:.3} ms on {} threads",
        y.nnz(),
        elapsed.as_secs_f64() * 1e3,
        std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1)
    );

    // Cross-check against the sequential reference implementation.
    let expected = spmspv_reference(&a, &x, &PlusTimes);
    assert!(y.approx_same_entries(&expected, 1e-9), "bucket result diverges from the reference");
    println!("result verified against the sequential reference");

    // The same description, masked: drop every third output row inside the
    // kernel's merge step (no post-filter pass).
    let mut masked = Mxv::over(&a).semiring(&PlusTimes).masked(MaskMode::Complement).prepare();
    masked.mask_mut().extend((0..n).step_by(3));
    let ym = masked.run(&x);
    println!("masked run: nnz = {} (unmasked had {})", ym.nnz(), y.nnz());
    assert!(ym.iter().all(|(i, _)| i % 3 != 0), "masked rows leaked");

    // And the same descriptor serves batches: one lane per input vector,
    // fused into a single traversal of the matrix.
    let lanes: Vec<_> = (0..4).map(|l| random_sparse_vec(n, n / 100, 100 + l)).collect();
    let batch = SparseVecBatch::from_lanes(&lanes).expect("lanes share n");
    let yb = op.run_batch(&batch);
    println!("batched run: k = {} lanes, total nnz = {}", yb.k(), yb.total_nnz());
}
