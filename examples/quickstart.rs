//! Quickstart: multiply a sparse matrix by a sparse vector with the
//! work-efficient SpMSpV-bucket algorithm and compare against the
//! definition-level reference.
//!
//! Run with: `cargo run --release --example quickstart`

use sparse_substrate::gen::{erdos_renyi, random_sparse_vec};
use sparse_substrate::ops::spmspv_reference;
use sparse_substrate::PlusTimes;
use spmspv::{SpMSpV, SpMSpVBucket, SpMSpVOptions};

fn main() {
    // An Erdős–Rényi matrix with n = 100k columns and ~8 nonzeros per column,
    // the model the paper uses for its complexity analysis.
    let n = 100_000;
    let a = erdos_renyi(n, 8.0, 42);
    println!(
        "matrix: {} x {} with {} nonzeros (avg column degree {:.2})",
        a.nrows(),
        a.ncols(),
        a.nnz(),
        a.avg_column_degree()
    );

    // A sparse input vector with 1% density.
    let x = random_sparse_vec(n, n / 100, 7);
    println!("input vector: nnz(x) = {}", x.nnz());

    // Prepare the algorithm once (allocates the SPA and buckets), then
    // multiply. The same instance can be reused for many vectors.
    let mut alg = SpMSpVBucket::new(&a, SpMSpVOptions::default());
    let start = std::time::Instant::now();
    let y = alg.multiply(&x, &PlusTimes);
    let elapsed = start.elapsed();
    println!(
        "SpMSpV-bucket: nnz(y) = {} computed in {:.3} ms on {} threads",
        y.nnz(),
        elapsed.as_secs_f64() * 1e3,
        std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1)
    );

    // Cross-check against the sequential reference implementation.
    let expected = spmspv_reference(&a, &x, &PlusTimes);
    assert!(y.approx_same_entries(&expected, 1e-9), "bucket result diverges from the reference");
    println!("result verified against the sequential reference");

    // The per-step breakdown the paper analyses in Figure 6.
    let (_, timings) = alg.multiply_with_timings(&x, &PlusTimes);
    println!("step breakdown: {timings}");
}
