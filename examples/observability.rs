//! Observability demo: one engine under mixed traffic, one merged report.
//!
//! Drives a serving [`Engine`] (with a few masked requests and a
//! multi-source BFS on the side, so both the per-engine and the
//! process-global registries have something to say), then:
//!
//! 1. prints the human dashboard — counters, gauges, latency histograms,
//!    and the flush trace ring — from the **merged** snapshot of
//!    `engine.obs()` and [`spmspv::obs::global()`];
//! 2. writes the machine-readable JSON snapshot (the exact shape the CI
//!    lane validates) to `OBS_EXAMPLE_OUT` (default `obs_snapshot.json`).
//!
//! Env knobs:
//!
//! * `OBS_DISABLED=1` — build the engine with [`ObsConfig::disabled`]:
//!   counters keep running (the stats stay exact) but histograms and traces
//!   stay empty, demonstrating the off switch;
//! * `OBS_EXAMPLE_OUT` — where the JSON snapshot goes.
//!
//! Run with: `cargo run --release --example observability`
//!
//! [`Engine`]: spmspv::engine::Engine

use std::time::Duration;

use sparse_substrate::gen::{random_sparse_vec, rmat, RmatParams};
use sparse_substrate::{MaskBits, PlusTimes, SparseVec};
use spmspv::engine::{Engine, EngineConfig, MxvRequest};
use spmspv::{obs, BatchAlgorithmKind, MaskMode, ObsConfig, SpMSpVOptions};
use spmspv_graphs::multi_bfs;

fn main() {
    let disabled = std::env::var_os("OBS_DISABLED").is_some();
    let obs_config = if disabled { ObsConfig::disabled() } else { ObsConfig::default() };
    if disabled {
        // The engine gets its config below; the process-global registry
        // (kernel/adaptive/executor metrics) has its own runtime switch.
        obs::global().set_enabled(false);
    }
    println!(
        "observability demo: collection {}",
        if disabled { "DISABLED (counters only)" } else { "enabled" }
    );

    let a = rmat(10, 12, RmatParams::graph500(), 3);
    let n = a.ncols();
    let nrows = a.nrows();
    println!("graph: {n} vertices, {} stored entries\n", a.nnz());

    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let engine = Engine::load_with(
        a.clone(),
        PlusTimes,
        EngineConfig::default()
            .max_lanes(16)
            .options(SpMSpVOptions::with_threads(threads))
            .obs(obs_config),
    );

    // Three rounds of mixed traffic: unmasked adaptive requests, a few
    // masked ones, and a couple pinned to the bucket kernel — enough variety
    // that the choice counters, queue-wait histogram, and trace ring all
    // light up.
    for round in 0..3usize {
        let mut tickets = Vec::new();
        for i in 0..10usize {
            let x: SparseVec<f64> =
                random_sparse_vec(n, 8 + (round * 10 + i) % 40, (round * 1009 + i) as u64);
            let mut req = MxvRequest::new(x);
            if i % 3 == 0 {
                let bits = MaskBits::from_indices(nrows, (i..nrows).step_by(2 + i % 3));
                req = req.mask(bits, MaskMode::Complement);
            }
            if i % 4 == 0 {
                req = req.algorithm(BatchAlgorithmKind::Bucket);
            }
            tickets.push(engine.submit(req));
        }
        let outcome = engine.flush();
        println!("flush {round}: {} lanes in {} fused batches", outcome.lanes, outcome.batches);
        for t in tickets {
            t.wait_timeout(Duration::from_secs(10)).expect("demo request served");
        }
    }

    // A multi-source BFS on the same graph exercises the layers below the
    // engine (adaptive dispatch, batched kernels, executor), which report
    // into the process-global registry.
    let bfs = multi_bfs(&a, &[0, 1, 2, 3], SpMSpVOptions::with_threads(threads));
    println!("multi-BFS: {} levels, visited {:?}\n", bfs.iterations, bfs.num_visited);

    // One merged report: the engine's registry plus the process-global one.
    let mut snapshot = engine.obs().snapshot();
    snapshot.merge(&obs::global().snapshot());
    println!("=== merged dashboard ===\n{snapshot}");

    let stats = engine.stats();
    assert_eq!(stats.requests, 30, "EngineStats counters are exact with obs on or off");
    let queue_wait = snapshot.histogram("engine.queue.wait").expect("engine histogram registered");
    if disabled {
        assert_eq!(queue_wait.count, 0, "disabled: no histogram samples");
        assert!(snapshot.events.is_empty(), "disabled: no trace events");
        if let Some(merge) = snapshot.histogram("batch.merge") {
            assert_eq!(merge.count, 0, "disabled: the global registry is quiet too");
        }
    } else {
        assert_eq!(queue_wait.count, 30, "one queue-wait sample per request");
        assert!(!snapshot.events.is_empty(), "enabled: the trace ring narrates the flushes");
    }

    let out = std::env::var("OBS_EXAMPLE_OUT").unwrap_or_else(|_| "obs_snapshot.json".to_string());
    std::fs::write(&out, snapshot.to_json().render() + "\n").expect("write JSON snapshot");
    println!("wrote {out}");
}
