//! Remote sharding end to end: a fleet of [`ShardHost`] **processes** on
//! localhost serving multi-source BFS through a TCP-connected
//! [`ShardedEngine`].
//!
//! The example re-invokes its own binary once per shard with a `host <s>`
//! argument: each child builds the same deterministic R-MAT graph, takes
//! its column slice, binds an ephemeral port, and prints `LISTENING <addr>`
//! before serving. The parent collects the addresses, dials the fleet with
//! [`ShardedEngine::connect`], drives the lock-step BFS over the wire with
//! [`multi_bfs_routed`], and checks the result is bit-identical to a local
//! single-engine traversal — BFS's `(min, select2nd)` semiring is exactly
//! associative, so not even the scatter/merge over sockets can show.
//!
//! Run with: `cargo run --release --example remote_shards`

use std::env;
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};

use sparse_substrate::gen::{rmat, RmatParams};
use sparse_substrate::{CscMatrix, Select2ndMin};
use spmspv::engine::EngineConfig;
use spmspv::net::{ShardHost, TcpConfig};
use spmspv::obs::ObsConfig;
use spmspv::shard::{ShardPlan, ShardedEngine};
use spmspv::SpMSpVOptions;
use spmspv_graphs::{multi_bfs, multi_bfs_routed};

const SCALE: u32 = 8;
const EDGE_FACTOR: usize = 8;
const SEED: u64 = 7;
const SHARDS: usize = 3;

/// Parent and children must agree on the graph and the plan; both are
/// deterministic functions of the constants above.
fn build_graph() -> CscMatrix<f64> {
    rmat(SCALE, EDGE_FACTOR, RmatParams::graph500(), SEED)
}

/// Child role: serve one shard's column slice until the parent kills us.
fn run_host(shard: usize) {
    let a = build_graph();
    let plan = ShardPlan::balanced(&a, SHARDS);
    let part = a.column_split(plan.bounds()).swap_remove(shard);
    let host = ShardHost::<f64, usize, Select2ndMin>::bind(
        ("127.0.0.1", 0),
        shard,
        plan.range(shard),
        part,
        Select2ndMin,
        EngineConfig::default().max_lanes(0),
    )
    .expect("bind an ephemeral localhost port");
    println!("LISTENING {}", host.local_addr().expect("bound listener has an address"));
    std::io::stdout().flush().expect("hand the address to the parent");
    host.run();
}

/// Parent role: spawn one host process per shard and harvest their
/// addresses from the `LISTENING` handshake line.
fn spawn_fleet() -> (Vec<Child>, Vec<SocketAddr>) {
    let exe = env::current_exe().expect("own executable path");
    let mut children = Vec::new();
    let mut addrs = Vec::new();
    for s in 0..SHARDS {
        let mut child = Command::new(&exe)
            .arg("host")
            .arg(s.to_string())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn a shard host process");
        let stdout = child.stdout.take().expect("stdout was piped");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines.next().expect("host announces its address").expect("readable stdout");
            if let Some(rest) = line.strip_prefix("LISTENING ") {
                break rest.parse::<SocketAddr>().expect("well-formed socket address");
            }
        };
        addrs.push(addr);
        children.push(child);
    }
    (children, addrs)
}

fn main() {
    let args: Vec<String> = env::args().collect();
    if args.get(1).map(String::as_str) == Some("host") {
        run_host(args[2].parse().expect("host <shard-index>"));
        return;
    }

    let a = build_graph();
    let n = a.ncols();
    println!("graph: {n} vertices, {} edges (rmat scale {SCALE})", a.nnz());

    let (mut children, addrs) = spawn_fleet();
    println!("fleet: {SHARDS} shard host processes at {addrs:?}");

    let plan = ShardPlan::balanced(&a, SHARDS);
    let router = ShardedEngine::<f64, usize, Select2ndMin>::connect(
        plan,
        n,
        Select2ndMin,
        &addrs,
        TcpConfig::default(),
        ObsConfig::default(),
    )
    .expect("dial every shard host");

    let sources = [0usize, 3, 17, 99];
    let remote = multi_bfs_routed(&router, &sources);
    println!(
        "remote BFS over {} sources: {} levels, visited {:?}",
        sources.len(),
        remote.iterations,
        remote.num_visited
    );

    let local = multi_bfs(&a, &sources, SpMSpVOptions::default());
    assert_eq!(remote.parents, local.parents, "remote parents diverged from the local run");
    assert_eq!(remote.levels, local.levels, "remote levels diverged from the local run");
    println!("bit-identical to the local single-engine traversal");

    let snap = router.obs().snapshot();
    for name in ["net.bytes.out", "net.bytes.in", "net.reconnects"] {
        println!("{name:>16} = {}", snap.counter(name).unwrap_or(0));
    }
    if let Some(h) = snap.histogram("net.rpc.time") {
        println!("    net.rpc.time = {} shard exchanges", h.count);
    }

    drop(router);
    for child in &mut children {
        let _ = child.kill();
        let _ = child.wait();
    }
    println!("fleet shut down");
}
