//! Serving demo: many concurrent clients → one fused flush.
//!
//! Spawns `clients` threads, each an independent logical user asking for a
//! handful of personalized frontier expansions over one shared graph. Every
//! client opens an engine [`Session`], submits `MxvRequest`s, and blocks on
//! its tickets; the engine's [`serve`] loop coalesces whatever is pending
//! into fused batched multiplications (flushing on width or linger
//! timeout). Afterwards each client's results are checked against an
//! independent single-vector run, and the engine's coalescing telemetry is
//! printed — the point of the exercise: far fewer fused batches than
//! requests.
//!
//! Run with: `cargo run --release --example serving [scale] [clients] [requests_per_client]`
//!
//! [`Session`]: spmspv::engine::Session
//! [`serve`]: spmspv::engine::Engine::serve

use std::time::{Duration, Instant};

use sparse_substrate::gen::{rmat, RmatParams};
use sparse_substrate::{PlusTimes, SparseVec};
use spmspv::engine::{Engine, EngineConfig, MxvRequest};
use spmspv::ops::Mxv;
use spmspv::SpMSpVOptions;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(13);
    let clients: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let per_client: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    println!("generating R-MAT graph: scale={scale}, edge_factor=12");
    let a = rmat(scale, 12, RmatParams::graph500(), 1);
    let n = a.ncols();
    println!("graph: {n} vertices, {} edges", a.nnz() / 2);
    println!("{clients} clients x {per_client} requests, served by one engine\n");

    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    // The engine OWNS the matrix here — the deployment shape: load once,
    // serve until dropped.
    let engine = Engine::load_with(
        a.clone(),
        PlusTimes,
        EngineConfig::default()
            .max_lanes(32)
            .queue_capacity(256)
            .linger(Duration::from_micros(500))
            .options(SpMSpVOptions::with_threads(threads)),
    );

    // Each client's request stream: small "seed" frontiers over a hot set of
    // popular vertices (the zipfian serving assumption).
    let frontier_for = |client: usize, round: usize| -> SparseVec<f64> {
        let mut idx: Vec<usize> = (0..8)
            .map(|e| ((e * 2654435761 + client * 40503 + round * 7919) % 256) * (n / 256))
            .collect();
        idx.sort_unstable();
        idx.dedup();
        SparseVec::from_pairs(n, idx.into_iter().map(|i| (i, 1.0)).collect())
            .expect("hot-set indices are in range")
    };

    let t0 = Instant::now();
    let all_results: Vec<Vec<(usize, usize, SparseVec<f64>)>> = engine.serve(|engine| {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    scope.spawn(move || {
                        let session = engine.session();
                        let mut results = Vec::with_capacity(per_client);
                        for r in 0..per_client {
                            let ticket = session.submit(MxvRequest::new(frontier_for(c, r)));
                            let y = ticket.wait().expect("request served, not failed");
                            results.push((c, r, y));
                        }
                        results
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client panicked")).collect()
        })
    });
    let served_in = t0.elapsed();

    // Verify every served lane against an independent single-vector run.
    let mut checked = 0usize;
    let mut oracle =
        Mxv::over(&a).semiring(&PlusTimes).options(SpMSpVOptions::with_threads(threads)).prepare();
    for client_results in &all_results {
        for (c, r, y) in client_results {
            assert_eq!(y, &oracle.run(&frontier_for(*c, *r)), "client {c} round {r} diverged");
            checked += 1;
        }
    }

    let stats = engine.stats();
    println!("served {checked} requests in {:.3} ms", served_in.as_secs_f64() * 1e3);
    println!("engine telemetry: {stats}");
    println!(
        "coalescing: {:.1} lanes per fused batch ({} requests → {} batched kernel calls)",
        stats.mean_lanes_per_batch(),
        stats.requests,
        stats.fused_batches,
    );
    assert_eq!(stats.lanes_executed, clients * per_client, "every request must be served");
    if stats.fused_batches == stats.lanes_executed {
        // How much the serve loop coalesces depends on submit timing; on a
        // heavily loaded scheduler every request can arrive alone. That is
        // not a defect, just an unlucky run — the deterministic proof
        // follows below.
        println!("note: scheduling spread the requests out; no serve-loop coalescing this run");
    }
    println!("all {checked} results verified against independent single-vector runs");

    // Deterministic coalescing proof, independent of thread scheduling:
    // pre-queue a burst of requests and flush once — they must fuse into a
    // single batched kernel call.
    let burst = 16usize;
    let before = engine.stats().fused_batches;
    let tickets: Vec<_> =
        (0..burst).map(|r| engine.submit(MxvRequest::new(frontier_for(0, r)))).collect();
    let outcome = engine.flush();
    for t in tickets {
        let _ = t.try_take().expect("flushed burst request").expect("burst request served");
    }
    assert_eq!(outcome.lanes, burst);
    assert_eq!(
        engine.stats().fused_batches - before,
        1,
        "a pre-queued burst of {burst} requests must coalesce into one fused batch"
    );
    println!("burst proof: {burst} pre-queued requests fused into exactly 1 batched call");
}
