//! SMO-style support-vector-machine working-set evaluation.
//!
//! §I of the paper: "In the area of supervised learning, SpMSpV becomes the
//! workhorse of many support-vector machine implementations that use the
//! sequential minimal optimization (SMO) approach. In this formulation, the
//! working set is represented by the sparse matrix A and the sample data is
//! represented by the sparse input vector x."
//!
//! This example builds a synthetic sparse feature matrix (rows = features,
//! columns = working-set samples), then repeatedly multiplies it by sparse
//! sample vectors — the kernel-row evaluation pattern of an SMO solver —
//! comparing the bucket algorithm against the sequential baseline.
//!
//! Run with: `cargo run --release --example svm_working_set`

use sparse_substrate::gen::{erdos_renyi, random_sparse_vec};
use sparse_substrate::ops::spmspv_reference;
use sparse_substrate::PlusTimes;
use spmspv::baselines::SequentialSpa;
use spmspv::{SpMSpV, SpMSpVBucket, SpMSpVOptions};
use std::time::Duration;

fn main() {
    // Working set: 200k features x 200k samples, ~20 nonzero features/sample.
    let n = 200_000;
    let working_set = erdos_renyi(n, 20.0, 99);
    println!(
        "working-set matrix: {} features x {} samples, {} nonzeros",
        working_set.nrows(),
        working_set.ncols(),
        working_set.nnz()
    );

    // One SMO outer iteration evaluates the kernel against a handful of
    // sparse samples; emulate 50 iterations with 0.05% dense samples.
    let iterations = 50;
    let sample_nnz = n / 2000;

    let mut bucket = SpMSpVBucket::new(&working_set, SpMSpVOptions::default());
    let mut sequential: SequentialSpa<'_, f64, f64> =
        SequentialSpa::new(&working_set, SpMSpVOptions::default());

    let mut bucket_time = Duration::ZERO;
    let mut seq_time = Duration::ZERO;
    for it in 0..iterations {
        let sample = random_sparse_vec(n, sample_nnz, it as u64);

        let t = std::time::Instant::now();
        let y_bucket = bucket.multiply(&sample, &PlusTimes);
        bucket_time += t.elapsed();

        let t = std::time::Instant::now();
        let y_seq = SpMSpV::<f64, f64, PlusTimes>::multiply(&mut sequential, &sample, &PlusTimes);
        seq_time += t.elapsed();

        if it == 0 {
            let expected = spmspv_reference(&working_set, &sample, &PlusTimes);
            assert!(y_bucket.approx_same_entries(&expected, 1e-9));
            assert!(y_seq.approx_same_entries(&expected, 1e-9));
            println!("first iteration verified against the reference");
        }
    }

    println!("{iterations} working-set products ({} nonzero features per sample):", sample_nnz);
    println!("  SpMSpV-bucket (parallel): {:>9.3} ms total", bucket_time.as_secs_f64() * 1e3);
    println!("  Sequential SPA baseline : {:>9.3} ms total", seq_time.as_secs_f64() * 1e3);
    println!("  speedup: {:.2}x", seq_time.as_secs_f64() / bucket_time.as_secs_f64().max(1e-12));
}
