//! Multi-source BFS on the batched SpMSpV engine: k BFS traversals advance
//! in lock step, each level one batched SpMSpV over the bundle of still-
//! active frontiers, so the matrix traversal is amortized across sources.
//!
//! Compares against k independent single-source BFS runs (same bucket
//! kernel) and asserts that every per-source level map agrees.
//!
//! Run with: `cargo run --release --example multi_source_bfs [scale] [k]`

use std::time::Instant;

use sparse_substrate::gen::{rmat, RmatParams};
use spmspv::{AlgorithmKind, SpMSpVOptions};
use spmspv_graphs::{bfs, multi_bfs};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(14);
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);

    println!("generating R-MAT graph: scale={scale}, edge_factor=16, sources k={k}");
    let a = rmat(scale, 16, RmatParams::graph500(), 1);
    let n = a.ncols();
    println!("graph: {n} vertices, {} edges", a.nnz() / 2);

    // Spread the sources deterministically across the vertex id space.
    let sources: Vec<usize> = (0..k).map(|i| (i * 2_654_435_761) % n).collect();
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let options = SpMSpVOptions::with_threads(threads);

    let t = Instant::now();
    let batched = multi_bfs(&a, &sources, options.clone());
    let batched_wall = t.elapsed();
    println!(
        "batched  : {:>3} levels, SpMSpV {:>9.3} ms, wall {:>9.3} ms, peak lanes {}",
        batched.iterations,
        batched.spmspv_time.as_secs_f64() * 1e3,
        batched_wall.as_secs_f64() * 1e3,
        batched.active_lanes_per_level.first().copied().unwrap_or(0),
    );

    let t = Instant::now();
    let mut singles = Vec::with_capacity(k);
    let mut single_spmspv = std::time::Duration::ZERO;
    for &src in &sources {
        let r = bfs(&a, src, AlgorithmKind::Bucket, options.clone());
        single_spmspv += r.spmspv_time;
        singles.push(r);
    }
    let single_wall = t.elapsed();
    println!(
        "k singles: {:>3} levels total, SpMSpV {:>9.3} ms, wall {:>9.3} ms",
        singles.iter().map(|r| r.iterations).sum::<usize>(),
        single_spmspv.as_secs_f64() * 1e3,
        single_wall.as_secs_f64() * 1e3,
    );

    for (s, single) in singles.iter().enumerate() {
        assert_eq!(
            batched.levels[s], single.levels,
            "source {} level map diverged from single-source BFS",
            sources[s]
        );
    }
    println!(
        "all {k} per-source level maps agree; batched SpMSpV speedup vs k singles: {:.2}x",
        single_spmspv.as_secs_f64() / batched.spmspv_time.as_secs_f64().max(f64::EPSILON),
    );

    println!("\nlane retirement (active sources per level):");
    for (level, &lanes) in batched.active_lanes_per_level.iter().enumerate() {
        println!("  level {level:>3}: {lanes:>4} active  {}", "#".repeat(lanes.min(64)));
    }
}
