//! Breadth-first search on a scale-free R-MAT graph, comparing all four
//! SpMSpV algorithms of the paper — the workload behind Figures 4 and 5.
//!
//! Run with: `cargo run --release --example bfs_rmat [scale] [edge_factor]`

use sparse_substrate::gen::{rmat, RmatParams};
use spmspv::{AlgorithmKind, SpMSpVOptions};
use spmspv_graphs::bfs;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(15);
    let edge_factor: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);

    println!("generating R-MAT graph: scale={scale}, edge_factor={edge_factor}");
    let a = rmat(scale, edge_factor, RmatParams::graph500(), 1);
    println!("graph: {} vertices, {} edges", a.ncols(), a.nnz() / 2);

    let source = 0usize;
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let mut reference_visited = None;

    for kind in AlgorithmKind::paper_competitors() {
        let r = bfs(&a, source, kind, SpMSpVOptions::with_threads(threads));
        println!(
            "{:<16} visited {:>8} vertices in {:>3} levels, SpMSpV time {:>9.3} ms",
            kind.label(),
            r.num_visited,
            r.iterations,
            r.spmspv_time.as_secs_f64() * 1e3
        );
        match reference_visited {
            None => reference_visited = Some(r.num_visited),
            Some(v) => assert_eq!(v, r.num_visited, "{kind} visited a different vertex count"),
        }
    }
    println!("all algorithms visited the same set of vertices");
}
