//! Data-driven PageRank on a web-like graph: demonstrates how the active
//! frontier (the sparse input vector of each SpMSpV) shrinks as vertices
//! converge — the motivation given in §I of the paper for preferring SpMSpV
//! over SpMV even for "regular" algorithms.
//!
//! Run with: `cargo run --release --example pagerank_datadriven`

use sparse_substrate::gen::{rmat, RmatParams};
use spmspv::{AlgorithmKind, SpMSpVOptions};
use spmspv_graphs::{pagerank_datadriven, PageRankOptions};

fn main() {
    let a = rmat(14, 12, RmatParams::web_like(), 3);
    println!("graph: {} vertices, {} edges", a.ncols(), a.nnz() / 2);

    let result = pagerank_datadriven(
        &a,
        AlgorithmKind::Bucket,
        SpMSpVOptions::default(),
        PageRankOptions { damping: 0.85, tolerance: 1e-9, max_iterations: 200 },
    );

    println!("converged in {} iterations", result.iterations);
    println!("active vertices per iteration (the SpMSpV input sparsity):");
    for (k, active) in result.active_per_iteration.iter().enumerate() {
        let bar_len = (*active as f64 / a.ncols() as f64 * 60.0).ceil() as usize;
        println!("  iter {k:>3}: {active:>8}  {}", "#".repeat(bar_len));
    }

    // Show the ten highest-ranked vertices.
    let mut order: Vec<usize> = (0..a.ncols()).collect();
    order.sort_by(|&u, &v| result.ranks[v].partial_cmp(&result.ranks[u]).unwrap());
    println!("top-10 vertices by PageRank:");
    for &v in order.iter().take(10) {
        println!("  vertex {v:>8}  rank {:.6}  degree {}", result.ranks[v], a.column_nnz(v));
    }
    let total: f64 = result.ranks.iter().sum();
    println!("rank mass: {total:.6} (normalized)");
}
