//! Connected components and maximal independent set on a high-diameter mesh,
//! two of the graph algorithms §I lists as SpMSpV customers.
//!
//! Run with: `cargo run --release --example connected_components`

use sparse_substrate::gen::{random_geometric, triangular_mesh};
use spmspv::{AlgorithmKind, SpMSpVOptions};
use spmspv_graphs::mis::is_maximal_independent_set;
use spmspv_graphs::{connected_components, maximal_independent_set, pseudo_diameter};

fn main() {
    // A triangulated mesh (hugetric-style) — one big component.
    let mesh = triangular_mesh(300, 300);
    println!("mesh: {} vertices, {} edges", mesh.ncols(), mesh.nnz() / 2);
    let labels = connected_components(&mesh, AlgorithmKind::Bucket, SpMSpVOptions::default());
    let components = count_distinct(&labels);
    println!("  connected components: {components}");
    println!("  pseudo-diameter     : {}", pseudo_diameter(&mesh, 0, 3));

    let set = maximal_independent_set(&mesh, AlgorithmKind::Bucket, SpMSpVOptions::default(), 7);
    println!(
        "  maximal independent set: {} vertices ({:.1}% of the graph), valid = {}",
        set.len(),
        100.0 * set.len() as f64 / mesh.ncols() as f64,
        is_maximal_independent_set(&mesh, &set)
    );

    // A random geometric graph near the connectivity threshold usually has a
    // giant component plus a few stragglers.
    let rgg = random_geometric(30_000, 1.2, 5);
    println!("rgg : {} vertices, {} edges", rgg.ncols(), rgg.nnz() / 2);
    let labels = connected_components(&rgg, AlgorithmKind::Bucket, SpMSpVOptions::default());
    let components = count_distinct(&labels);
    let giant = largest_component_size(&labels);
    println!(
        "  connected components: {components} (largest holds {:.1}% of vertices)",
        100.0 * giant as f64 / rgg.ncols() as f64
    );
}

fn count_distinct(labels: &[usize]) -> usize {
    let mut sorted = labels.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

fn largest_component_size(labels: &[usize]) -> usize {
    let mut counts = std::collections::HashMap::new();
    for &l in labels {
        *counts.entry(l).or_insert(0usize) += 1;
    }
    counts.values().copied().max().unwrap_or(0)
}
