//! Minimal, API-compatible stand-in for the subset of [criterion] this
//! workspace's benches use, so `cargo bench` works without registry access.
//!
//! Methodology (simplified but honest): every benchmark gets one warm-up
//! run, then timed samples are collected until the group's
//! `measurement_time` budget or `sample_size` sample count is reached,
//! whichever comes first. Each sample times a batch of iterations sized so a
//! batch takes roughly a millisecond, and the report prints the minimum,
//! mean and maximum per-iteration time. No statistics, plots or baselines —
//! swap this path dependency for the real `criterion` crate for those.
//!
//! [criterion]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20, default_measurement_time: Duration::from_secs(2) }
    }
}

impl Criterion {
    /// Accepted for compatibility; this shim has no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== bench group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
        }
    }

    /// Accepted for compatibility; reports are printed as benchmarks run.
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for compatibility; this shim warms up with a single
    /// untimed call regardless.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; this shim prints per-iteration times
    /// only.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            report: None,
        };
        f(&mut bencher);
        bencher.print(&self.name, &id.0);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            report: None,
        };
        f(&mut bencher, input);
        bencher.print(&self.name, &id.0);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Throughput annotation, mirroring `criterion::Throughput` (accepted and
/// ignored by this shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    report: Option<Report>,
}

#[derive(Debug, Clone, Copy)]
struct Report {
    min: Duration,
    mean: Duration,
    max: Duration,
    samples: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch sizing: aim for ~1ms batches so Instant overhead
        // stays negligible even for sub-microsecond routines.
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(20));
        let iters_per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        let budget = self.measurement_time;
        let started = Instant::now();
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        while samples.len() < self.sample_size && (samples.is_empty() || started.elapsed() < budget)
        {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(t.elapsed() / iters_per_sample as u32);
        }

        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len().max(1) as u32;
        self.report = Some(Report { min, mean, max, samples: samples.len(), iters_per_sample });
    }

    fn print(&self, group: &str, id: &str) {
        match &self.report {
            Some(r) => eprintln!(
                "{group}/{id:<40} min {:>12?}  mean {:>12?}  max {:>12?}  ({} samples x {} iters)",
                r.min, r.mean, r.max, r.samples, r.iters_per_sample
            ),
            None => eprintln!("{group}/{id:<40} (no measurement recorded)"),
        }
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` function, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).measurement_time(Duration::from_millis(20));
        let mut ran = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("bfs", 4).0, "bfs/4");
        assert_eq!(BenchmarkId::from_parameter(16).0, "16");
    }
}
