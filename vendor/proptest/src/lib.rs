//! Minimal, API-compatible stand-in for the subset of [proptest] this
//! workspace's tests use, so they run without registry access.
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed sequence (seeded by case index), and failing cases are
//! **not shrunk** — the panic message reports the case number so a failure
//! is reproducible by re-running the test. Swap this path dependency for the
//! real `proptest` crate when a registry is reachable.
//!
//! [proptest]: https://docs.rs/proptest

use rand::rngs::StdRng;

/// Re-exported so the `proptest!` macro expansion can seed generators.
pub use rand::SeedableRng;

#[doc(hidden)]
pub use rand as rand_shim;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error carried out of a failing property body by `prop_assert!`.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of random values of one type.
///
/// The real crate separates strategies from value trees to support
/// shrinking; this shim only generates.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Feeds generated values into `f` to obtain a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy yielding clones of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

impl_range_strategy!(usize, u32, u64, i32, i64, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng), self.3.generate(rng))
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        use rand::Rng;
        rng.gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> u64 {
        use rand::Rng;
        rng.gen()
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Default, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Uniform choice between boxed alternatives; built by [`prop_oneof!`].
pub struct Union<T> {
    alternatives: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union from boxed strategies (at least one).
    pub fn new(alternatives: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs at least one alternative");
        Union { alternatives }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        let pick = rng.gen_range(0..self.alternatives.len());
        self.alternatives[pick].generate(rng)
    }
}

/// Boxes a strategy for use inside [`Union`].
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_map`).

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeMap;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `element` values with length in `size` (half-open).
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeMap` with size (after key deduplication) at most
    /// the drawn target.
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: std::ops::Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            let mut map = BTreeMap::new();
            // Colliding keys shrink the map below `target`, matching the
            // real crate's "up to `size`" semantics closely enough.
            for _ in 0..target {
                map.insert(self.keys.generate(rng), self.values.generate(rng));
            }
            map
        }
    }

    /// A `BTreeMap` built from `keys`/`values` with size in `size`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        keys: K,
        values: V,
        size: std::ops::Range<usize>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { keys, values, size }
    }
}

pub mod prelude {
    //! Glob-import target mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                for case in 0..config.cases {
                    let mut rng = <$crate::rand_shim::rngs::StdRng as $crate::SeedableRng>::seed_from_u64(
                        0xC0FF_EE00u64 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!("proptest case {case} failed: {e}");
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($pat in $strat),+) $body)*
        }
    };
}

/// Asserts inside a property body, failing the case (not aborting the
/// process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {left:?}\n right: {right:?}"
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {left:?}\n right: {right:?}",
                format!($($fmt)+)
            )));
        }
    }};
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        for _ in 0..100 {
            let v = (2usize..10, 1i32..16).generate(&mut rng);
            assert!((2..10).contains(&v.0) && (1..16).contains(&v.1));
            let vs = crate::collection::vec(0usize..5, 0..7).generate(&mut rng);
            assert!(vs.len() < 7);
            assert!(vs.iter().all(|&x| x < 5));
            let m = crate::collection::btree_map(0usize..10, 1i32..4, 0..6).generate(&mut rng);
            assert!(m.len() < 6);
            let picked = prop_oneof![Just(1usize), Just(4usize)].generate(&mut rng);
            assert!(picked == 1 || picked == 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_wires_patterns_and_assertions(
            (a, b) in (0usize..10, 0usize..10),
            flag in any::<bool>(),
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(a + b, b + a, "commutativity with flag {}", flag);
        }
    }
}
