//! Minimal, API-compatible stand-in for the subset of the [rand] crate this
//! workspace uses, so the workspace builds without registry access.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed (which is all the synthetic
//! matrix/vector generators require; they never ask for cryptographic or
//! cross-version-stable streams). Swap this path dependency for the real
//! `rand` crate when a registry is reachable.
//!
//! [rand]: https://docs.rs/rand

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling conveniences, mirroring the `rand::Rng` extension trait.
pub trait Rng: RngCore {
    /// A uniformly distributed value of type `T` (see [`Standard`] impls:
    /// `f64` in `[0, 1)`, `f32` in `[0, 1)`, `bool`, and the integer types).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// A uniform value in `range` (half-open).
    fn gen_range<T: UniformSample>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(&range, self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Named generator types.

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    ///
    /// Note: the stream differs from the real `StdRng` (ChaCha12); the
    /// workspace only relies on per-seed determinism, not on a specific
    /// stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, the
            // initialization recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// The standard distribution marker (`rng.gen::<T>()` sampling).
#[derive(Debug, Default, Clone, Copy)]
pub struct Standard;

/// A distribution that can produce values of type `T`.
pub trait Distribution<T> {
    /// Draws one value using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that can be sampled uniformly from a half-open `Range`.
pub trait UniformSample: Sized {
    /// Draws a value in `[range.start, range.end)`.
    fn sample_range<R: RngCore>(range: &std::ops::Range<Self>, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {
        $(
            impl UniformSample for $t {
                fn sample_range<R: RngCore>(range: &std::ops::Range<Self>, rng: &mut R) -> Self {
                    assert!(range.start < range.end, "empty gen_range");
                    let span = (range.end - range.start) as u64;
                    // Multiply-shift rejection-free mapping (Lemire); the tiny
                    // modulo bias is irrelevant for test-data generation.
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    range.start + hi as $t
                }
            }
        )*
    };
}

impl_uniform_uint!(u32, u64, usize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {
        $(
            impl UniformSample for $t {
                fn sample_range<R: RngCore>(range: &std::ops::Range<Self>, rng: &mut R) -> Self {
                    assert!(range.start < range.end, "empty gen_range");
                    let unit: f64 = Standard.sample(rng);
                    range.start + (range.end - range.start) * unit as $t
                }
            }
        )*
    };
}

impl_uniform_float!(f64);

impl UniformSample for i64 {
    fn sample_range<R: RngCore>(range: &std::ops::Range<Self>, rng: &mut R) -> Self {
        assert!(range.start < range.end, "empty gen_range");
        let span = (range.end as i128 - range.start as i128) as u128;
        let hi = (rng.next_u64() as u128 * span) >> 64;
        (range.start as i128 + hi as i128) as i64
    }
}

impl UniformSample for i32 {
    fn sample_range<R: RngCore>(range: &std::ops::Range<Self>, rng: &mut R) -> Self {
        let wide = i64::sample_range(&((range.start as i64)..(range.end as i64)), rng);
        wide as i32
    }
}

pub mod distributions {
    //! Distribution types (`Uniform`, `Standard`).

    pub use crate::{Distribution, Standard};

    /// Uniform distribution over a half-open range, mirroring
    /// `rand::distributions::Uniform`.
    #[derive(Debug, Clone)]
    pub struct Uniform<T> {
        range: std::ops::Range<T>,
    }

    impl<T: crate::UniformSample + Clone> Uniform<T> {
        /// Builds the distribution from a half-open range.
        pub fn new(low: T, high: T) -> Self {
            Uniform { range: low..high }
        }

        /// `Uniform::from(a..b)` construction used by the generators.
        pub fn from(range: std::ops::Range<T>) -> Self {
            Uniform { range }
        }
    }

    impl<T: crate::UniformSample + Clone> Distribution<T> for Uniform<T> {
        fn sample<R: crate::RngCore + ?Sized>(&self, rng: &mut R) -> T {
            struct Shim<'a, R: ?Sized>(&'a mut R);
            impl<R: crate::RngCore + ?Sized> crate::RngCore for Shim<'_, R> {
                fn next_u64(&mut self) -> u64 {
                    self.0.next_u64()
                }
            }
            T::sample_range(&self.range, &mut Shim(rng))
        }
    }
}

pub mod seq {
    //! Slice utilities (`shuffle`, `choose`).

    use crate::{Rng, UniformSample};

    /// Extension trait mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(&(0..i + 1), rng);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_range(&(0..self.len()), rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let v = rng.gen_range(1i32..16);
            assert!((1..16).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut StdRng::seed_from_u64(1));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely identity");
    }

    #[test]
    fn uniform_distribution_samples_in_range() {
        use super::distributions::{Distribution, Uniform};
        let mut rng = StdRng::seed_from_u64(11);
        let idx = Uniform::from(0usize..50);
        let val = Uniform::from(0.0f64..1.0);
        for _ in 0..1000 {
            assert!(idx.sample(&mut rng) < 50);
            let v = val.sample(&mut rng);
            assert!((0.0..1.0).contains(&v));
        }
    }
}
