//! Minimal, API-compatible stand-in for the subset of [rayon] this workspace
//! uses, written against `std` only so the workspace builds without network
//! access to a registry.
//!
//! It is **not** a work-stealing runtime: parallel iterators eagerly
//! materialize their items, split them into `current_num_threads()` contiguous
//! chunks and run each chunk as a job on a **persistent worker pool** (lazily
//! started on the first parallel call, sized to the machine's logical CPU
//! count, reused by every subsequent parallel call) — so iterative workloads
//! such as a serving loop's flush-after-flush execution pay thread spawn cost
//! once per process instead of once per call. The submitting thread helps
//! drain its own job batch while it waits, which both adds one lane of
//! parallelism and makes nested parallel calls deadlock-free.
//! Order-sensitive guarantees the algorithms rely on are preserved:
//!
//! * `map(..).collect::<Vec<_>>()` keeps item order;
//! * `zip` pairs items positionally, truncating to the shorter side;
//! * `enumerate` numbers items from 0 in order;
//! * a `ThreadPool` built for `t` threads makes closures run under
//!   [`ThreadPool::install`] observe `current_num_threads() == t`, and
//!   parallel iterators launched there use at most `t` worker threads.
//!
//! Swap this path dependency for the real `rayon` crate when a registry is
//! reachable; no workspace source code needs to change.
//!
//! [rayon]: https://docs.rs/rayon

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::Mutex;

pub mod prelude {
    //! Glob-import target mirroring `rayon::prelude`.
    pub use crate::iter::{
        FromParIter, IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        MapParIter, ParIter,
    };
    pub use crate::slice::ParallelSliceMut;
}

pub mod slice {
    //! Parallel slice operations (`par_sort_unstable_by_key`).

    use crate::iter::IntoParallelIterator;

    /// Subset of `rayon::slice::ParallelSliceMut`.
    pub trait ParallelSliceMut<T: Send> {
        /// Exposes the underlying mutable slice.
        fn as_parallel_slice_mut(&mut self) -> &mut [T];

        /// Unstable sort by key: chunks are sorted on worker threads, then
        /// k-way merged through an auxiliary buffer. Equivalent ordering to
        /// `sort_unstable_by_key` except for the relative order of equal
        /// keys (unstable either way).
        fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
        where
            T: Copy,
            K: Ord + Copy,
            F: Fn(&T) -> K + Sync,
        {
            let slice = self.as_parallel_slice_mut();
            let threads = crate::current_num_threads().max(1);
            if threads == 1 || slice.len() < 2048 {
                slice.sort_unstable_by_key(key);
                return;
            }
            let chunk = slice.len().div_ceil(threads);
            let chunks: Vec<&mut [T]> = slice.chunks_mut(chunk).collect();
            chunks.into_par_iter().map(|c| c.sort_unstable_by_key(&key)).collect::<Vec<()>>();
            // k-way merge of the sorted runs into an auxiliary buffer.
            let mut cursors: Vec<(usize, usize)> = Vec::new();
            let mut start = 0;
            while start < slice.len() {
                let end = (start + chunk).min(slice.len());
                cursors.push((start, end));
                start = end;
            }
            let mut aux: Vec<T> = Vec::with_capacity(slice.len());
            while !cursors.is_empty() {
                let mut best = 0;
                for r in 1..cursors.len() {
                    if key(&slice[cursors[r].0]) < key(&slice[cursors[best].0]) {
                        best = r;
                    }
                }
                let (pos, end) = &mut cursors[best];
                aux.push(slice[*pos]);
                *pos += 1;
                if *pos == *end {
                    cursors.swap_remove(best);
                }
            }
            slice.copy_from_slice(&aux);
        }
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn as_parallel_slice_mut(&mut self) -> &mut [T] {
            self
        }
    }

    impl<T: Send> ParallelSliceMut<T> for Vec<T> {
        fn as_parallel_slice_mut(&mut self) -> &mut [T] {
            self
        }
    }
}

pub(crate) mod pool {
    //! The persistent worker pool behind every parallel call.
    //!
    //! Workers are OS threads spawned once (lazily, on the first parallel
    //! call) and parked on a condvar between jobs. A *batch* is the set of
    //! jobs of one [`run_jobs`] call; batches are queued FIFO and a worker
    //! takes one job at a time, so several concurrent submitters interleave
    //! fairly. The submitting thread does not merely block: it keeps
    //! executing jobs of its own batch until none are left unstarted, which
    //! makes nested `run_jobs` calls (a job submitting a sub-batch) free of
    //! deadlock — every waiter is also a worker for the work it waits on.

    use std::collections::VecDeque;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Condvar, Mutex, OnceLock};

    /// A lifetime-erased job. See the SAFETY discussion in [`run_jobs`].
    type Job = Box<dyn FnOnce() + Send + 'static>;

    /// One `run_jobs` call's jobs plus its completion latch.
    struct Batch {
        /// Jobs not yet started; both workers and the submitter pop here.
        pending: Mutex<VecDeque<Job>>,
        /// Jobs not yet finished (pending + currently executing), plus the
        /// first panic payload observed while executing one.
        status: Mutex<(usize, Option<Box<dyn std::any::Any + Send>>)>,
        /// Signalled when the last job of the batch finishes.
        done: Condvar,
        /// Ambient `current_num_threads()` of the submitter, restored around
        /// every job so nested parallel calls honor the pinned pool size.
        threads: usize,
    }

    impl Batch {
        /// Runs one job of this batch, recording panics instead of unwinding
        /// into the worker loop, and releases the latch slot.
        fn execute(&self, job: Job) {
            let result = catch_unwind(AssertUnwindSafe(|| {
                super::with_thread_count(self.threads, job);
            }));
            let mut status = self.status.lock().unwrap();
            status.0 -= 1;
            if let Err(payload) = result {
                status.1.get_or_insert(payload);
            }
            if status.0 == 0 {
                self.done.notify_all();
            }
        }

        /// Pops one not-yet-started job, if any.
        fn take(&self) -> Option<Job> {
            self.pending.lock().unwrap().pop_front()
        }
    }

    /// The queue workers serve: batches with unstarted jobs, FIFO.
    struct GlobalQueue {
        batches: Mutex<VecDeque<Arc<Batch>>>,
        available: Condvar,
    }

    fn queue() -> &'static GlobalQueue {
        static POOL: OnceLock<&'static GlobalQueue> = OnceLock::new();
        POOL.get_or_init(|| {
            let q: &'static GlobalQueue = Box::leak(Box::new(GlobalQueue {
                batches: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
            }));
            let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).max(1);
            for i in 0..workers {
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{i}"))
                    .spawn(move || worker_loop(q))
                    .expect("failed to spawn pool worker");
            }
            q
        })
    }

    /// A worker: forever pop the front batch's next job and run it. Batches
    /// whose pending queue has drained are dropped from the queue (their
    /// in-flight jobs are tracked by the batch's own latch, not here).
    fn worker_loop(q: &'static GlobalQueue) {
        loop {
            let (batch, job) = {
                let mut batches = q.batches.lock().unwrap();
                'find: loop {
                    while let Some(front) = batches.front() {
                        if let Some(job) = front.take() {
                            break 'find (Arc::clone(front), job);
                        }
                        batches.pop_front();
                    }
                    batches = q.available.wait(batches).unwrap();
                }
            };
            batch.execute(job);
        }
    }

    /// Executes every job, in parallel on the persistent pool, and returns
    /// once **all** of them have finished. Panics inside a job are caught,
    /// the remaining jobs still run, and the first payload is re-raised on
    /// the submitting thread afterwards.
    pub(crate) fn run_jobs(jobs: Vec<Box<dyn FnOnce() + Send + '_>>) {
        let n = jobs.len();
        match n {
            0 => return,
            1 => {
                for job in jobs {
                    job();
                }
                return;
            }
            _ => {}
        }
        // SAFETY (lifetime erasure): the jobs may borrow the submitter's
        // stack frame. Erasing their lifetimes to `'static` is sound because
        // this function does not return before every job has finished
        // executing (the `done` latch below counts them down, and the wait
        // runs on every path, panic included), so no borrow is dereferenced
        // after the frame it points into is gone. Workers never stash a job
        // beyond the `execute` call that consumes it.
        let jobs: VecDeque<Job> = jobs
            .into_iter()
            .map(|job| unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) })
            .collect();
        let batch = Arc::new(Batch {
            pending: Mutex::new(jobs),
            status: Mutex::new((n, None)),
            done: Condvar::new(),
            threads: super::current_num_threads(),
        });

        let q = queue();
        {
            let mut batches = q.batches.lock().unwrap();
            batches.push_back(Arc::clone(&batch));
        }
        q.available.notify_all();

        // Help-first wait: run this batch's own unstarted jobs, then block
        // until the stragglers (jobs taken by workers) finish.
        while let Some(job) = batch.take() {
            batch.execute(job);
        }
        let mut status = batch.status.lock().unwrap();
        while status.0 > 0 {
            status = batch.done.wait(status).unwrap();
        }
        if let Some(payload) = status.1.take() {
            drop(status);
            resume_unwind(payload);
        }
    }
}

thread_local! {
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of threads of the pool whose [`ThreadPool::install`] (or
/// [`ThreadPool::scope`]) scope the calling thread is executing under, or the
/// machine's logical CPU count outside any pool.
pub fn current_num_threads() -> usize {
    let set = CURRENT_THREADS.with(|c| c.get());
    if set == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        set
    }
}

pub(crate) fn with_thread_count<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    CURRENT_THREADS.with(|c| {
        let prev = c.get();
        c.set(threads);
        let guard = RestoreOnDrop { cell: c, prev };
        let out = f();
        drop(guard);
        out
    })
}

struct RestoreOnDrop<'a> {
    cell: &'a Cell<usize>,
    prev: usize,
}

impl Drop for RestoreOnDrop<'_> {
    fn drop(&mut self) {
        self.cell.set(self.prev);
    }
}

/// Error type returned by [`ThreadPoolBuilder::build`]; this shim cannot fail
/// to build a pool, the type exists for signature compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default (all logical CPUs) thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Pins the pool size; `0` means all logical CPUs.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Accepted for compatibility; the shim spawns unnamed scoped threads.
    pub fn thread_name<F: FnMut(usize) -> String>(self, _f: F) -> Self {
        self
    }

    /// Materializes the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A logical pool: it owns no threads, but records the parallelism degree
/// that parallel iterators and scopes launched under it should use.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool's thread count as the ambient parallelism.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        with_thread_count(self.threads, op)
    }

    /// Runs a scope in which [`Scope::spawn`]ed tasks execute on up to
    /// `self.threads` worker threads after `op` returns (tasks may spawn
    /// further tasks; all complete before `scope` returns).
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R + Send,
        R: Send,
    {
        let scope = Scope { tasks: Mutex::new(VecDeque::new()) };
        let result = with_thread_count(self.threads, || op(&scope));
        loop {
            let batch: Vec<Task<'scope>> = {
                let mut q = scope.tasks.lock().unwrap();
                q.drain(..).collect()
            };
            if batch.is_empty() {
                break;
            }
            if self.threads == 1 || batch.len() == 1 {
                with_thread_count(self.threads, || {
                    for task in batch {
                        task(&scope);
                    }
                });
            } else {
                // Every task becomes one job on the persistent pool; tasks
                // spawned by tasks land in `scope.tasks` and run in the next
                // round of this drain loop.
                let scope_ref = &scope;
                with_thread_count(self.threads, || {
                    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = batch
                        .into_iter()
                        .map(|task| {
                            Box::new(move || task(scope_ref)) as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    pool::run_jobs(jobs);
                });
            }
        }
        result
    }
}

type Task<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

/// Scope handle passed to [`ThreadPool::scope`] closures.
pub struct Scope<'scope> {
    tasks: Mutex<VecDeque<Task<'scope>>>,
}

impl<'scope> Scope<'scope> {
    /// Queues a task; it runs (possibly on another thread) before the
    /// enclosing [`ThreadPool::scope`] call returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.tasks.lock().unwrap().push_back(Box::new(f));
    }
}

pub mod iter {
    //! The parallel-iterator subset: eager item lists with deferred,
    //! chunk-parallel terminal operations.

    /// Runs `f` over `items` as up to `current_num_threads()` chunk jobs on
    /// the persistent worker pool, preserving item order in the result.
    fn run_parallel<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let threads = super::current_num_threads().max(1);
        let n = items.len();
        if threads == 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }
        let chunk_len = n.div_ceil(threads);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
        let mut it = items.into_iter();
        loop {
            let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        // One output slot per chunk: each job owns exactly one `&mut` slot,
        // so the writes are disjoint and order is preserved by construction.
        let mut slots: Vec<Option<Vec<R>>> = (0..chunks.len()).map(|_| None).collect();
        {
            let f = &f;
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
                .into_iter()
                .zip(slots.iter_mut())
                .map(|(chunk, slot)| {
                    Box::new(move || {
                        *slot = Some(chunk.into_iter().map(f).collect::<Vec<R>>());
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            super::pool::run_jobs(jobs);
        }
        let mut out = Vec::with_capacity(n);
        for part in &mut slots {
            out.append(part.as_mut().expect("every chunk job ran to completion"));
        }
        out
    }

    /// An eager list of items awaiting a parallel terminal operation.
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParIter<T> {
        /// Pairs items positionally with another parallel iterator,
        /// truncating to the shorter of the two.
        pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
            ParIter { items: self.items.into_iter().zip(other.items).collect() }
        }

        /// Attaches each item's position.
        pub fn enumerate(self) -> ParIter<(usize, T)> {
            ParIter { items: self.items.into_iter().enumerate().collect() }
        }

        /// Defers `f` to the terminal operation (`collect`/`for_each`), which
        /// runs it in parallel.
        pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> MapParIter<T, F> {
            MapParIter { items: self.items, f }
        }

        /// Runs `f` on every item in parallel.
        pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
            run_parallel(self.items, f);
        }

        /// Number of items.
        pub fn len(&self) -> usize {
            self.items.len()
        }

        /// `true` when there are no items.
        pub fn is_empty(&self) -> bool {
            self.items.is_empty()
        }
    }

    /// A [`ParIter`] with a pending `map` closure.
    pub struct MapParIter<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T: Send, F> MapParIter<T, F> {
        /// Runs the pending map in parallel and collects the results in item
        /// order.
        pub fn collect<C>(self) -> C
        where
            F: Fn(T) -> C::Item + Sync,
            C: FromParIter,
            C::Item: Send,
        {
            C::from_vec(run_parallel(self.items, self.f))
        }
    }

    /// Collection types a parallel `collect` can target.
    pub trait FromParIter {
        /// Element type collected.
        type Item;
        /// Builds the collection from an ordered `Vec` of results.
        fn from_vec(v: Vec<Self::Item>) -> Self;
    }

    impl<T> FromParIter for Vec<T> {
        type Item = T;
        fn from_vec(v: Vec<T>) -> Self {
            v
        }
    }

    /// `into_par_iter()` — by-value parallel iteration.
    pub trait IntoParallelIterator {
        /// Item yielded to the parallel closures.
        type Item: Send;
        /// Converts into the eager parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    impl<T: Send> IntoParallelIterator for ParIter<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            self
        }
    }

    /// `par_iter()` — by-shared-reference parallel iteration.
    pub trait IntoParallelRefIterator<'a> {
        /// Item yielded (`&'a T`).
        type Item: Send;
        /// Borrows into the eager parallel iterator.
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter { items: self.iter().collect() }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter { items: self.iter().collect() }
        }
    }

    /// `par_iter_mut()` — by-mutable-reference parallel iteration.
    pub trait IntoParallelRefMutIterator<'a> {
        /// Item yielded (`&'a mut T`).
        type Item: Send;
        /// Mutably borrows into the eager parallel iterator.
        fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Item = &'a mut T;
        fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
            ParIter { items: self.iter_mut().collect() }
        }
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Item = &'a mut T;
        fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
            ParIter { items: self.iter_mut().collect() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zip_enumerate_for_each_runs_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let a: Vec<usize> = (0..100).collect();
        let b: Vec<usize> = (100..200).collect();
        let sum = AtomicUsize::new(0);
        a.par_iter().zip(b.par_iter()).enumerate().for_each(|(i, (&x, &y))| {
            assert_eq!(y - x, 100);
            assert_eq!(x, i);
            sum.fetch_add(x + y, Ordering::Relaxed);
        });
        let expected: usize = (0..100).map(|x| x + x + 100).sum();
        assert_eq!(sum.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v: Vec<usize> = vec![1; 64];
        v.par_iter_mut().enumerate().for_each(|(i, slot)| *slot = i);
        assert_eq!(v, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn workers_inherit_the_pool_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let counts: Vec<usize> = pool.install(|| {
            let items: Vec<usize> = (0..8).collect();
            items.par_iter().map(|_| current_num_threads()).collect()
        });
        assert!(counts.iter().all(|&c| c == 2), "nested calls saw {counts:?}");
    }

    #[test]
    fn install_sets_ambient_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        // restored afterwards
        assert_ne!(CURRENT_THREADS.with(|c| c.get()), 3);
    }

    #[test]
    fn scope_runs_spawned_and_nested_tasks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let count = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|inner| {
                    count.fetch_add(1, Ordering::Relaxed);
                    inner.spawn(|_| {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }
}
