//! Correctness suite for the observability histogram
//! ([`spmspv::obs::Histogram`]): bucket-seam edge cases across the full
//! `u64` axis, merge associativity at both the atomic and snapshot level,
//! and a property test holding the quantile estimator to its advertised
//! error bound — relative error ≤ 1/16 against an exact nearest-rank
//! oracle computed from the raw samples.

use proptest::prelude::*;
use spmspv::obs::{Histogram, HistogramSnapshot, NUM_BUCKETS};

/// The values most likely to land in the wrong bucket: zero, the linear→log
/// transition at 16, every power-of-two seam up to the top of the axis, and
/// `u64::MAX` itself.
fn seam_values() -> Vec<u64> {
    let mut vals = vec![0u64, 1, 2, 15, 16, 17, 31, 32, 33, u64::MAX - 1, u64::MAX];
    for shift in 5..64u32 {
        let p = 1u64 << shift;
        vals.extend([p - 1, p, p + 1]);
    }
    vals
}

#[test]
fn bucket_index_and_bounds_agree_at_every_seam() {
    for v in seam_values() {
        let idx = Histogram::bucket_index(v);
        assert!(idx < NUM_BUCKETS, "v={v} produced out-of-range bucket {idx}");
        let (lo, hi) = Histogram::bucket_bounds(idx);
        assert!(lo <= v && v <= hi, "v={v} outside its bucket [{lo}, {hi}]");
        // Neighbouring values never skip a bucket: the axis is tiled.
        if v > 0 {
            let prev = Histogram::bucket_index(v - 1);
            assert!(idx == prev || idx == prev + 1, "gap between {} and {v}", v - 1);
        }
    }
    assert_eq!(Histogram::bucket_index(0), 0);
    assert_eq!(Histogram::bucket_index(u64::MAX), NUM_BUCKETS - 1);
}

#[test]
fn single_value_histograms_report_exactly_at_every_seam() {
    // A histogram holding one distinct value must report it exactly at any
    // quantile: the midpoint estimate is clamped into [min, max].
    for v in seam_values() {
        let h = Histogram::new();
        h.record(v);
        h.record(v);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), v, "single-value histogram must be exact (v={v}, q={q})");
        }
        assert_eq!((h.min(), h.max(), h.count()), (v, v, 2));
    }
}

#[test]
fn extreme_pair_spans_the_whole_axis() {
    let h = Histogram::new();
    h.record(0);
    h.record(u64::MAX);
    assert_eq!((h.min(), h.max(), h.count()), (0, u64::MAX, 2));
    assert_eq!(h.sum(), u64::MAX, "0 + MAX is exact");
    assert_eq!(h.quantile(0.0), 0, "lowest rank resolves to the exact zero bucket");
    // The top quantile is a midpoint of the last (widest) bucket: not exact,
    // but within the advertised 1/16 relative error of the true maximum.
    let top = h.quantile(1.0);
    assert!(top >= u64::MAX - u64::MAX / 16, "top quantile {top} out of bound");
}

/// Exact nearest-rank quantile over the raw samples — the oracle the
/// bucketed estimator is held against. Matches the estimator's rank rule:
/// the `ceil(q·n)`-th smallest sample, clamped to `[1, n]`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Strategy: samples spread across magnitudes (a raw `u64` shifted right by
/// 0–63 bits), so small, medium, and huge values all appear.
fn sample_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        (any::<u64>(), 0u32..64).prop_map(|(raw, shift)| raw >> shift),
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline bound: for any sample set and any quantile, the
    /// bucketed estimate is within 1/16 relative error of the exact
    /// nearest-rank answer (+1 absolute slack for midpoint rounding).
    #[test]
    fn quantile_error_is_bounded_by_bucket_resolution(
        samples in sample_strategy(),
        q_millis in 0u32..1001,
    ) {
        let q = q_millis as f64 / 1000.0;
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let est = h.quantile(q);
        let tolerance = exact / 16 + 1;
        prop_assert!(
            est.abs_diff(exact) <= tolerance,
            "estimate {est} vs exact {exact}: error {} exceeds {tolerance} (n={}, q={q})",
            est.abs_diff(exact),
            samples.len(),
        );
        // The estimate also never escapes the recorded range.
        prop_assert!(est >= h.min() && est <= h.max());
    }

    /// Exact aggregates survive bucketing: count, wrapping sum, min, max.
    #[test]
    fn aggregates_are_exact(samples in sample_strategy()) {
        let h = Histogram::new();
        let mut sum = 0u64;
        for &v in &samples {
            h.record(v);
            sum = sum.wrapping_add(v);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), sum);
        prop_assert_eq!(h.min(), *samples.iter().min().unwrap());
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
    }

    /// Snapshot merging is associative and commutative, and agrees with
    /// recording everything into one histogram directly.
    #[test]
    fn merge_is_associative_commutative_and_lossless(
        a in sample_strategy(),
        b in sample_strategy(),
        c in sample_strategy(),
    ) {
        let snap = |values: &[u64]| -> HistogramSnapshot {
            let h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            h.snapshot()
        };
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));

        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right, "merge must be associative");

        // c ⊕ b ⊕ a
        let mut rev = sc.clone();
        rev.merge(&sb);
        rev.merge(&sa);
        prop_assert_eq!(&left, &rev, "merge must be commutative");

        // And lossless: identical to one histogram fed all three sets.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &snap(&all), "merged snapshots must equal direct recording");
    }
}
