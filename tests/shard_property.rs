//! Property tests for the shard router: **a [`ShardedEngine`] serves every
//! request bit-identically to a single unsharded [`Engine`]** — across
//! semirings (`PlusTimes`, `MinPlus`, `Select2ndMin` via BFS), mask modes
//! (unmasked / keep / complement), shard counts {1, 2, 3, 7}, fixed and
//! adaptive kernel paths, and skewed nnz distributions (power-law matrices,
//! frontiers confined to one shard's columns).
//!
//! Entry values are small integers, so `PlusTimes`'s ⊕ is exact and the
//! ascending-shard merge fold is *bitwise* the unsharded ascending-column
//! fold (`min`-based semirings are exactly associative outright). The
//! companion satellite asserts [`ShardedEngine::stats`] is the sum of the
//! per-shard [`EngineStats`].

use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use sparse_substrate::{
    CooMatrix, CscMatrix, MaskBits, MinPlus, PlusTimes, Scalar, Semiring, SparseVec,
};
use spmspv::engine::{Engine, EngineConfig, EngineError, MxvRequest};
use spmspv::net::{
    read_frame, write_frame, ConnectError, Frame, ShardHost, ShardHostHandle, TcpConfig,
    WireFrontier, WireScalar, DEFAULT_MAX_FRAME,
};
use spmspv::obs::ObsConfig;
use spmspv::shard::{ShardPlan, ShardedEngine};
use spmspv::stats::EngineStats;
use spmspv::{BatchAlgorithmKind, MaskMode};

/// Strategy: a random sparse square matrix with small-integer entries and a
/// skew knob — `skew` of the entries land in the first `n/8` columns, so
/// high-skew cases concentrate nearly all nnz in the lowest shard.
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = CscMatrix<f64>> {
    (4usize..max_dim, 0.0f64..0.95).prop_flat_map(|(n, skew)| {
        let entry = (0..n, 0..n, 1i32..16, 0.0f64..1.0);
        proptest::collection::vec(entry, 1..(n * n).min(300)).prop_map(move |entries| {
            let mut coo = CooMatrix::new(n, n);
            let head = (n / 8).max(1);
            for (i, j, v, roll) in entries {
                let col = if roll < skew { j % head } else { j };
                coo.push(i, col, v as f64);
            }
            CscMatrix::from_coo(coo, |a, b| a + b)
        })
    })
}

/// One generated request: an integer-valued frontier (possibly confined to
/// a narrow column band, exercising single-shard fan-out) and a mask pick.
#[derive(Debug, Clone)]
struct GenRequest {
    frontier: SparseVec<f64>,
    mask: Option<(MaskBits, MaskMode)>,
}

fn request_strategy(n: usize) -> impl Strategy<Value = GenRequest> {
    let frontier =
        (proptest::collection::btree_map(0..n, 1i32..16, 1..n.min(24)), any::<bool>(), 0..n)
            .prop_map(move |(map, confine, start)| {
                let band = (n / 4).max(1);
                let pairs: Vec<(usize, f64)> = map
                    .into_iter()
                    .map(|(i, v)| (if confine { start + i % band } else { i }.min(n - 1), v as f64))
                    .collect::<std::collections::BTreeMap<usize, f64>>()
                    .into_iter()
                    .collect();
                SparseVec::from_pairs(n, pairs).expect("unique in-range indices")
            });
    let mask = prop_oneof![
        Just(None),
        (proptest::collection::btree_map(0..n, 1i32..2, 0..n), any::<bool>()).prop_map(
            move |(rows, keep)| {
                let bits = MaskBits::from_indices(n, rows.into_keys());
                let mode = if keep { MaskMode::Keep } else { MaskMode::Complement };
                Some((bits, mode))
            }
        ),
    ];
    (frontier, mask).prop_map(|(frontier, mask)| GenRequest { frontier, mask })
}

fn operands(max_dim: usize) -> impl Strategy<Value = (CscMatrix<f64>, Vec<GenRequest>)> {
    matrix_strategy(max_dim).prop_flat_map(|a| {
        let n = a.ncols();
        (Just(a), proptest::collection::vec(request_strategy(n), 1..6))
    })
}

fn build_request(r: &GenRequest, kind: BatchAlgorithmKind) -> MxvRequest<f64> {
    let mut req = MxvRequest::new(r.frontier.clone()).algorithm(kind);
    if let Some((bits, mode)) = &r.mask {
        req = req.mask(bits.clone(), *mode);
    }
    req
}

/// Serves `requests` through an unsharded engine and a `shards`-way router
/// and asserts every pair of results carries the same entry set with
/// bitwise-equal values.
fn assert_sharded_is_bit_identical<S>(
    a: &CscMatrix<f64>,
    requests: &[GenRequest],
    semiring: S,
    shards: usize,
    kind: BatchAlgorithmKind,
) -> Result<(), TestCaseError>
where
    S: Semiring<f64, f64> + Clone + 'static,
    S::Output: Scalar + PartialOrd + std::fmt::Debug,
{
    let oracle = Engine::over_with(a, semiring.clone(), EngineConfig::default());
    let expect: Vec<SparseVec<S::Output>> = {
        let tickets: Vec<_> =
            requests.iter().map(|r| oracle.submit(build_request(r, kind))).collect();
        oracle.flush();
        tickets
            .iter()
            .map(|t| t.try_take().expect("oracle flush serves").expect("oracle cannot fail"))
            .collect()
    };

    let router = ShardedEngine::partition(a, semiring, shards);
    prop_assert!(router.num_shards() <= shards.max(1));
    let tickets: Vec<_> = requests.iter().map(|r| router.submit(build_request(r, kind))).collect();
    let outcome = router.flush();
    prop_assert_eq!(outcome.requests, requests.len());
    prop_assert_eq!(outcome.merged + outcome.failed + outcome.retired, outcome.requests);
    prop_assert_eq!(outcome.failed, 0, "no chaos armed: nothing may fail");

    for (i, (t, want)) in tickets.iter().zip(&expect).enumerate() {
        let got = t.try_take().expect("router flush serves").expect("router cannot fail");
        prop_assert_eq!(got.len(), want.len());
        prop_assert!(
            got.same_entries(want),
            "request {} diverged under {} shards: got {:?}, want {:?}",
            i,
            router.num_shards(),
            got,
            want
        );
    }

    // Satellite: the router's merged stats are exactly the per-shard sum.
    let mut summed = EngineStats::default();
    for s in 0..router.num_shards() {
        summed.absorb(&router.shard_stats(s));
    }
    prop_assert_eq!(summed, router.stats(), "stats() must equal the absorb-sum of shard stats");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: sharded ≡ unsharded, bit for bit, for the
    /// exact-⊕ arithmetic semiring, across shard counts and both the fixed
    /// bucket kernel and the adaptive dispatcher.
    #[test]
    fn plus_times_sharded_equals_unsharded(
        (a, requests) in operands(28),
        shards_ix in 0usize..4,
        adaptive in any::<bool>(),
    ) {
        let kind = if adaptive { BatchAlgorithmKind::Adaptive } else { BatchAlgorithmKind::Bucket };
        let shards = [1usize, 2, 3, 7][shards_ix];
        assert_sharded_is_bit_identical(&a, &requests, PlusTimes, shards, kind)?;
    }

    /// Same property under the tropical `(min, +)` semiring — exactly
    /// associative, so bit-identity needs no integrality argument — with
    /// the naive kernel in the mix.
    #[test]
    fn min_plus_sharded_equals_unsharded(
        (a, requests) in operands(24),
        shards_ix in 0usize..4,
        naive in any::<bool>(),
    ) {
        let kind = if naive { BatchAlgorithmKind::Naive } else { BatchAlgorithmKind::Adaptive };
        let shards = [1usize, 2, 3, 7][shards_ix];
        assert_sharded_is_bit_identical(&a, &requests, MinPlus, shards, kind)?;
    }
}

/// Deterministic corner: every shard count on a matrix whose nnz all sit in
/// one column (the plan collapses to fewer shards; routing still works).
#[test]
fn concentrated_matrix_serves_through_any_shard_count() {
    let n = 12;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, 5, (i + 1) as f64);
    }
    let a = CscMatrix::from_coo(coo, |x, y| x + y);
    let x = SparseVec::from_pairs(n, vec![(5, 3.0)]).unwrap();
    let oracle = {
        let engine = Engine::over(&a, PlusTimes);
        let t = engine.submit(MxvRequest::new(x.clone()));
        engine.flush();
        t.try_take().unwrap().unwrap()
    };
    for shards in [1usize, 2, 3, 7, 100] {
        let router = ShardedEngine::partition(&a, PlusTimes, shards);
        let t = router.submit(MxvRequest::new(x.clone()));
        let outcome = router.flush();
        assert_eq!(outcome.merged, 1);
        assert!(t.try_take().unwrap().unwrap().same_entries(&oracle), "{shards} shards diverged");
    }
}

/// Deterministic corner: a frontier that straddles every shard boundary of
/// an explicit uneven plan, masked both ways.
#[test]
fn explicit_plan_with_masks_matches_oracle() {
    let n = 20;
    let mut coo = CooMatrix::new(n, n);
    for j in 0..n {
        for k in 0..3 {
            coo.push((j * 7 + k * 5) % n, j, ((j + k) % 9 + 1) as f64);
        }
    }
    let a = CscMatrix::from_coo(coo, |x, y| x + y);
    let x = SparseVec::from_pairs(n, (0..n).step_by(2).map(|j| (j, (j % 7 + 1) as f64)).collect())
        .unwrap();
    let mask = MaskBits::from_indices(n, (0..n).filter(|v| v % 3 == 0));
    for mode in [MaskMode::Keep, MaskMode::Complement] {
        let oracle = {
            let engine = Engine::over(&a, PlusTimes);
            let t = engine.submit(MxvRequest::new(x.clone()).mask(mask.clone(), mode));
            engine.flush();
            t.try_take().unwrap().unwrap()
        };
        let plan = ShardPlan::from_bounds(n, vec![0, 3, 4, 11, n]);
        let router = ShardedEngine::partition_with(&a, PlusTimes, plan, EngineConfig::default());
        let t = router.submit(MxvRequest::new(x.clone()).mask(mask.clone(), mode));
        router.flush();
        assert!(
            t.try_take().unwrap().unwrap().same_entries(&oracle),
            "masked ({mode:?}) sharded run diverged"
        );
    }
}

/// Routing bookkeeping: fan-out is the number of owning shards, empty
/// frontiers resolve to empty outputs, and cancellation retires cleanly.
#[test]
fn fanout_empty_and_cancel_edges() {
    let n = 16;
    let mut coo = CooMatrix::new(n, n);
    for j in 0..n {
        coo.push(j, j, 1.0);
        coo.push((j + 1) % n, j, 2.0);
    }
    let a = CscMatrix::from_coo(coo, |x, y| x + y);
    let router = ShardedEngine::partition(&a, PlusTimes, 4);
    assert_eq!(router.ncols(), n);
    assert_eq!(router.nrows(), n);

    // Empty frontier: fan-out 0, merged into an empty output.
    let empty = router.submit(MxvRequest::new(SparseVec::new(n)));
    // Confined frontier: it only owns columns inside shard 0's range.
    let r0 = router.plan().range(0);
    let confined =
        router.submit(MxvRequest::new(SparseVec::from_pairs(n, vec![(r0.start, 2.0)]).unwrap()));
    // Cancelled before the flush: resolves as Cancelled, never merged.
    let doomed = router.submit(MxvRequest::new(SparseVec::from_pairs(n, vec![(0, 1.0)]).unwrap()));
    assert!(doomed.cancel());

    assert_eq!(router.pending(), 3);
    let outcome = router.flush();
    assert_eq!(outcome.requests, 3);
    assert_eq!(outcome.merged, 2);
    assert_eq!(outcome.retired, 1);
    let y = empty.try_take().unwrap().unwrap();
    assert_eq!(y.len(), n);
    assert_eq!(y.nnz(), 0);
    assert!(confined.try_take().unwrap().is_ok());
    assert!(matches!(doomed.try_take(), Some(Err(spmspv::engine::EngineError::Cancelled))));

    // The fan-out histogram saw all three routings (0, 1, and the doomed
    // one's own fan-out), and dropping the router disconnects stragglers.
    let snap = router.obs().snapshot();
    assert_eq!(snap.counter("shard.requests"), Some(3));
    assert_eq!(snap.histogram("shard.fanout").map(|h| h.count), Some(3));
    let straggler =
        router.submit(MxvRequest::new(SparseVec::from_pairs(n, vec![(1, 1.0)]).unwrap()));
    drop(router);
    assert!(matches!(straggler.try_take(), Some(Err(spmspv::engine::EngineError::Disconnected))));
}

// ---------------------------------------------------------------------------
// Remote transport: the same properties over sockets.
// ---------------------------------------------------------------------------

/// Spawns one [`ShardHost`] per shard of `plan` on ephemeral localhost
/// ports, each loaded with its column slice of `a`.
fn spawn_hosts<S>(
    a: &CscMatrix<f64>,
    plan: &ShardPlan,
    semiring: S,
) -> (Vec<ShardHostHandle>, Vec<SocketAddr>)
where
    S: Semiring<f64, f64> + Clone + 'static,
    S::Output: WireScalar,
{
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for (s, part) in a.column_split(plan.bounds()).into_iter().enumerate() {
        let host = ShardHost::bind(
            "127.0.0.1:0",
            s,
            plan.range(s),
            part,
            semiring.clone(),
            EngineConfig::default(),
        )
        .expect("bind an ephemeral localhost port");
        addrs.push(host.local_addr().expect("bound listener has an address"));
        handles.push(host.spawn());
    }
    (handles, addrs)
}

/// The socket counterpart of [`assert_sharded_is_bit_identical`]: the same
/// requests served through [`ShardHost`] daemons over a [`TcpTransport`]
/// must match both the unsharded oracle and the in-process router, bit for
/// bit.
fn assert_tcp_matches_in_process<S>(
    a: &CscMatrix<f64>,
    requests: &[GenRequest],
    semiring: S,
    shards: usize,
    kind: BatchAlgorithmKind,
) -> Result<(), TestCaseError>
where
    S: Semiring<f64, f64> + Clone + 'static,
    S::Output: WireScalar + PartialOrd + std::fmt::Debug,
{
    let oracle = Engine::over_with(a, semiring.clone(), EngineConfig::default());
    let expect: Vec<SparseVec<S::Output>> = {
        let tickets: Vec<_> =
            requests.iter().map(|r| oracle.submit(build_request(r, kind))).collect();
        oracle.flush();
        tickets
            .iter()
            .map(|t| t.try_take().expect("oracle flush serves").expect("oracle cannot fail"))
            .collect()
    };

    let plan = ShardPlan::balanced(a, shards);
    let local =
        ShardedEngine::partition_with(a, semiring.clone(), plan.clone(), EngineConfig::default());
    let (hosts, addrs) = spawn_hosts(a, &plan, semiring.clone());
    let remote = ShardedEngine::<f64, f64, S>::connect(
        plan,
        a.nrows(),
        semiring,
        &addrs,
        TcpConfig::default(),
        ObsConfig::default(),
    )
    .expect("dial every freshly spawned host");

    let local_tickets: Vec<_> =
        requests.iter().map(|r| local.submit(build_request(r, kind))).collect();
    let remote_tickets: Vec<_> =
        requests.iter().map(|r| remote.submit(build_request(r, kind))).collect();
    local.flush();
    let outcome = remote.flush();
    prop_assert_eq!(outcome.requests, requests.len());
    prop_assert_eq!(outcome.failed, 0, "healthy hosts: nothing may fail: {:?}", outcome.failures);
    prop_assert_eq!(outcome.merged, requests.len());
    prop_assert_eq!(
        outcome.shards_flushed,
        outcome.per_shard.iter().filter(|o| o.requests > 0).count()
    );

    for (i, ((lt, rt), want)) in local_tickets.iter().zip(&remote_tickets).zip(&expect).enumerate()
    {
        let via_local = lt.try_take().expect("local serves").expect("local cannot fail");
        let via_tcp = rt.try_take().expect("remote serves").expect("remote cannot fail");
        prop_assert!(
            via_tcp.same_entries(want),
            "request {} over TCP diverged from the oracle: got {:?}, want {:?}",
            i,
            via_tcp,
            want
        );
        prop_assert!(via_tcp.same_entries(&via_local), "request {} diverged across transports", i);
    }

    // The wire moved real bytes both ways.
    let snap = remote.obs().snapshot();
    prop_assert!(snap.counter("net.bytes.out").unwrap_or(0) > 0);
    prop_assert!(snap.counter("net.bytes.in").unwrap_or(0) > 0);
    drop(remote);
    for host in hosts {
        host.shutdown();
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Transport equivalence: TCP-served results are bit-identical to the
    /// in-process router and the unsharded oracle, across semirings, mask
    /// modes, shard counts, and kernel paths.
    #[test]
    fn tcp_router_matches_in_process_and_oracle(
        (a, requests) in operands(20),
        shards_ix in 0usize..3,
        adaptive in any::<bool>(),
    ) {
        let kind = if adaptive { BatchAlgorithmKind::Adaptive } else { BatchAlgorithmKind::Bucket };
        let shards = [1usize, 2, 3][shards_ix];
        assert_tcp_matches_in_process(&a, &requests, PlusTimes, shards, kind)?;
    }

    /// The same equivalence under `(min, +)` — a second `S::Output` type
    /// travelling the wire.
    #[test]
    fn tcp_router_matches_under_min_plus(
        (a, requests) in operands(16),
        naive in any::<bool>(),
    ) {
        let kind = if naive { BatchAlgorithmKind::Naive } else { BatchAlgorithmKind::Adaptive };
        assert_tcp_matches_in_process(&a, &requests, MinPlus, 3, kind)?;
    }
}

/// A deterministic three-shard fixture: ring + diagonal, so every column
/// owns nnz and per-shard confined frontiers are easy to aim.
fn chaos_fixture(n: usize) -> CscMatrix<f64> {
    let mut coo = CooMatrix::new(n, n);
    for j in 0..n {
        coo.push(j, j, (j + 1) as f64);
        coo.push((j + 3) % n, j, 2.0);
    }
    CscMatrix::from_coo(coo, |x, y| x + y)
}

fn oracle_result(a: &CscMatrix<f64>, x: &SparseVec<f64>) -> SparseVec<f64> {
    let engine = Engine::over(a, PlusTimes);
    let t = engine.submit(MxvRequest::new(x.clone()));
    engine.flush();
    t.try_take().unwrap().unwrap()
}

/// Acceptance: killing one `ShardHost` mid-load fails **only the tickets
/// routed through it** (with its `shard <s>:` attribution), siblings keep
/// serving bit-exact results, and after the host restarts on the same port
/// the router reconnects (`net.reconnects` > 0) with no stranded waiters.
#[test]
fn killed_host_fails_only_its_tickets_then_reconnects() {
    let n = 24;
    let a = chaos_fixture(n);
    let plan = ShardPlan::uniform(n, 3);
    let frontier = |col: usize| SparseVec::from_pairs(n, vec![(col, 2.0)]).unwrap();
    let want: Vec<SparseVec<f64>> =
        [1, 9, 17].iter().map(|&c| oracle_result(&a, &frontier(c))).collect();

    let (mut hosts, addrs) = spawn_hosts(&a, &plan, PlusTimes);
    let router = ShardedEngine::<f64, f64, PlusTimes>::connect(
        plan.clone(),
        n,
        PlusTimes,
        &addrs,
        TcpConfig::default(),
        ObsConfig::default(),
    )
    .expect("dial all three hosts");

    // Round 1: one confined request per shard, then shard 1's host dies
    // before the flush reaches it.
    let tickets: Vec<_> =
        [1, 9, 17].iter().map(|&c| router.submit(MxvRequest::new(frontier(c)))).collect();
    hosts.remove(1).kill();
    let outcome = router.flush();
    assert_eq!(outcome.requests, 3);
    assert_eq!(outcome.merged, 2, "the two live shards still serve");
    assert_eq!(outcome.failed, 1, "exactly the dead shard's ticket fails");
    assert!(
        outcome.failures.iter().all(|m| m.contains("shard 1:")),
        "failure must name the dead shard: {:?}",
        outcome.failures
    );

    // Every ticket resolved — an outage must never strand a waiter.
    let r0 = tickets[0].try_take().expect("resolved").expect("shard 0 serves");
    assert!(r0.same_entries(&want[0]), "sibling shard 0 diverged");
    match tickets[1].try_take() {
        Some(Err(EngineError::KernelFailed(msg))) => {
            assert!(msg.contains("shard 1:"), "unattributed failure: {msg}")
        }
        other => panic!("dead shard's ticket must fail as KernelFailed, got {other:?}"),
    }
    let r2 = tickets[2].try_take().expect("resolved").expect("shard 2 serves");
    assert!(r2.same_entries(&want[2]), "sibling shard 2 diverged");

    // Restart shard 1 on the *same* port (std listeners set SO_REUSEADDR,
    // so the rebind races only the old accept loop's exit).
    let part1 = a.column_split(plan.bounds()).swap_remove(1);
    let mut rebound = None;
    for _ in 0..50 {
        match ShardHost::bind(
            addrs[1],
            1,
            plan.range(1),
            part1.clone(),
            PlusTimes,
            EngineConfig::default(),
        ) {
            Ok(host) => {
                rebound = Some(host.spawn());
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    let rebound = rebound.expect("host rebinds its old port");

    // Round 2: the full fleet serves again, bit-exact, through a fresh
    // connection.
    let tickets: Vec<_> =
        [1, 9, 17].iter().map(|&c| router.submit(MxvRequest::new(frontier(c)))).collect();
    let outcome = router.flush();
    assert_eq!(outcome.merged, 3, "recovered fleet serves everything: {:?}", outcome.failures);
    for (t, want) in tickets.iter().zip(&want) {
        assert!(t.try_take().expect("resolved").expect("serves").same_entries(want));
    }
    let snap = router.obs().snapshot();
    assert!(
        snap.counter("net.reconnects").unwrap_or(0) > 0,
        "recovery must register as a reconnect"
    );

    drop(router);
    rebound.shutdown();
    for host in hosts {
        host.shutdown();
    }
}

/// Satellite: a deadline that expires *in flight* resolves as
/// `DeadlineExceeded` — never a hung ticket. Checked at the protocol level
/// (a zero budget on the wire never touches the host engine) and end to
/// end through the router.
#[test]
fn deadline_expiring_in_flight_resolves_not_hangs() {
    let n = 8;
    let a = chaos_fixture(n);

    // Protocol level: a raw connection sends a frontier whose budget is
    // already exhausted; the host must answer `DeadlineExceeded` (and the
    // flush summary), not execute it.
    let host =
        ShardHost::bind("127.0.0.1:0", 0, 0..n, a.clone(), PlusTimes, EngineConfig::default())
            .expect("bind");
    let addr = host.local_addr().unwrap();
    let handle = host.spawn();
    let mut stream = TcpStream::connect(addr).expect("dial the host");
    let dead: Frame<f64, f64> = Frame::Frontier(WireFrontier {
        request: 42,
        shard: 0,
        slice: SparseVec::from_pairs(n, vec![(1, 1.0)]).unwrap(),
        deadline_micros: Some(0),
        mask: None,
        algorithm: None,
    });
    write_frame(&mut stream, &dead, DEFAULT_MAX_FRAME).unwrap();
    write_frame::<f64, f64, _>(&mut stream, &Frame::Flush, DEFAULT_MAX_FRAME).unwrap();
    let (reply, _) = read_frame::<f64, f64, _>(&mut stream, DEFAULT_MAX_FRAME)
        .expect("reply arrives")
        .expect("not EOF");
    assert!(
        matches!(reply, Frame::Error { request: 42, error: EngineError::DeadlineExceeded, .. }),
        "expired budget must come back DeadlineExceeded, got {reply:?}"
    );
    let (done, _) = read_frame::<f64, f64, _>(&mut stream, DEFAULT_MAX_FRAME)
        .expect("summary arrives")
        .expect("not EOF");
    match done {
        Frame::Done { requests, .. } => {
            assert_eq!(requests, 0, "the dead request never reached the engine")
        }
        other => panic!("expected the Done summary, got {other:?}"),
    }
    write_frame::<f64, f64, _>(&mut stream, &Frame::Goodbye, DEFAULT_MAX_FRAME).unwrap();
    handle.shutdown();

    // End to end: through a connected router, an already-expired deadline
    // resolves `DeadlineExceeded` while a generous one still serves.
    let plan = ShardPlan::uniform(n, 2);
    let (hosts, addrs) = spawn_hosts(&a, &plan, PlusTimes);
    let router = ShardedEngine::<f64, f64, PlusTimes>::connect(
        plan,
        n,
        PlusTimes,
        &addrs,
        TcpConfig::default(),
        ObsConfig::default(),
    )
    .expect("dial both hosts");
    let x = SparseVec::from_pairs(n, vec![(1, 1.0), (6, 2.0)]).unwrap();
    let expired = router.submit(MxvRequest::new(x.clone()).deadline(Instant::now()));
    let fresh = router
        .submit(MxvRequest::new(x.clone()).deadline(Instant::now() + Duration::from_secs(60)));
    let outcome = router.flush();
    assert_eq!(outcome.requests, 2);
    assert_eq!(outcome.timeouts, 1, "the expired request times out, nothing else");
    assert_eq!(outcome.merged, 1);
    assert!(matches!(expired.try_take(), Some(Err(EngineError::DeadlineExceeded))));
    let got = fresh.try_take().expect("resolved").expect("generous deadline serves");
    assert!(got.same_entries(&oracle_result(&a, &x)));
    drop(router);
    for host in hosts {
        host.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Replication: failover, discovery handshake, heartbeat.
// ---------------------------------------------------------------------------

/// Spawns `replicas` [`ShardHost`]s per shard of `plan`, every replica of a
/// shard loaded with the same column slice.
fn spawn_replicated_hosts(
    a: &CscMatrix<f64>,
    plan: &ShardPlan,
    replicas: usize,
) -> (Vec<Vec<ShardHostHandle>>, Vec<Vec<SocketAddr>>) {
    let mut handles = Vec::new();
    let mut groups = Vec::new();
    for (s, part) in a.column_split(plan.bounds()).into_iter().enumerate() {
        let mut hs = Vec::new();
        let mut addrs = Vec::new();
        for _ in 0..replicas {
            let host = ShardHost::bind(
                "127.0.0.1:0",
                s,
                plan.range(s),
                part.clone(),
                PlusTimes,
                EngineConfig::default(),
            )
            .expect("bind an ephemeral localhost port");
            addrs.push(host.local_addr().expect("bound listener has an address"));
            hs.push(host.spawn());
        }
        handles.push(hs);
        groups.push(addrs);
    }
    (handles, groups)
}

/// A transport config for failover tests: no background heartbeat (the
/// exchange itself must discover the corpse) and short re-dial budgets so
/// dead-primary attempts fail fast.
fn failover_config() -> TcpConfig {
    TcpConfig {
        connect_retries: 1,
        retry_backoff: Duration::from_millis(1),
        heartbeat: None,
        ..TcpConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tentpole acceptance: with two replicas per shard, killing **every
    /// primary** mid-load yields zero failed tickets — the router fails
    /// over to the surviving replicas and the results stay bit-identical
    /// to the unsharded oracle.
    #[test]
    fn killed_primaries_fail_over_bit_identically(
        (a, requests) in operands(28),
        shards in 2usize..4,
    ) {
        let oracle = Engine::over_with(&a, PlusTimes, EngineConfig::default());
        let expect: Vec<SparseVec<f64>> = {
            let tickets: Vec<_> = requests
                .iter()
                .map(|r| oracle.submit(build_request(r, BatchAlgorithmKind::Bucket)))
                .collect();
            oracle.flush();
            tickets
                .iter()
                .map(|t| t.try_take().expect("oracle flush serves").expect("oracle cannot fail"))
                .collect()
        };

        let plan = ShardPlan::balanced(&a, shards).with_fingerprints_of(&a);
        let (mut hosts, groups) = spawn_replicated_hosts(&a, &plan, 2);
        let router = ShardedEngine::<f64, f64, PlusTimes>::connect_replicated(
            plan,
            a.nrows(),
            PlusTimes,
            &groups,
            failover_config(),
            ObsConfig::default(),
        )
        .expect("dial every replica of every shard");

        // Kill every primary before the first flush ever reaches it.
        for group in &mut hosts {
            group.remove(0).kill();
        }

        let tickets: Vec<_> = requests
            .iter()
            .map(|r| router.submit(build_request(r, BatchAlgorithmKind::Bucket)))
            .collect();
        let outcome = router.flush();
        prop_assert_eq!(
            outcome.failed, 0,
            "replicas must absorb every primary death: {:?}",
            outcome.failures
        );
        for (t, want) in tickets.iter().zip(&expect) {
            let got = t.try_take().expect("resolved").expect("replica serves");
            prop_assert!(
                got.same_entries(want),
                "failover result diverged from the oracle:\n got {got:?}\nwant {want:?}"
            );
        }
        let snap = router.obs().snapshot();
        prop_assert!(
            snap.counter("shard.replica.failovers").unwrap_or(0) >= 1,
            "a dead primary must register as a failover"
        );

        drop(router);
        for group in hosts {
            for host in group {
                host.shutdown();
            }
        }
    }
}

/// Satellite: the `single_shard_outage` blast radius shrinks to **zero**
/// when the shard has a replica — the same kill that fails one ticket on a
/// replica-less fleet fails none here.
#[test]
fn replica_shrinks_outage_blast_radius_to_zero() {
    let n = 24;
    let a = chaos_fixture(n);
    let plan = ShardPlan::uniform(n, 3).with_fingerprints_of(&a);
    let frontier = |col: usize| SparseVec::from_pairs(n, vec![(col, 2.0)]).unwrap();
    let want: Vec<SparseVec<f64>> =
        [1, 9, 17].iter().map(|&c| oracle_result(&a, &frontier(c))).collect();

    let (mut hosts, groups) = spawn_replicated_hosts(&a, &plan, 2);
    let router = ShardedEngine::<f64, f64, PlusTimes>::connect_replicated(
        plan,
        n,
        PlusTimes,
        &groups,
        failover_config(),
        ObsConfig::default(),
    )
    .expect("dial the replicated fleet");

    // One confined request per shard, then shard 1's *primary* dies.
    let tickets: Vec<_> =
        [1, 9, 17].iter().map(|&c| router.submit(MxvRequest::new(frontier(c)))).collect();
    hosts[1].remove(0).kill();
    let outcome = router.flush();
    assert_eq!(outcome.requests, 3);
    assert_eq!(outcome.failed, 0, "the replica absorbs the outage: {:?}", outcome.failures);
    assert_eq!(outcome.merged, 3, "every ticket serves");
    for (t, want) in tickets.iter().zip(&want) {
        let got = t.try_take().expect("resolved").expect("serves through the replica");
        assert!(got.same_entries(want), "replica result diverged");
    }
    let snap = router.obs().snapshot();
    assert!(
        snap.counter("shard.replica.failovers").unwrap_or(0) >= 1,
        "the mid-flush failover must be counted"
    );
    assert_eq!(snap.counter("shard.failed").unwrap_or(0), 0, "no ticket failure may be recorded");

    drop(router);
    for group in hosts {
        for host in group {
            host.shutdown();
        }
    }
}

/// Tentpole acceptance: a host that advertises the wrong shard, range, or
/// matrix fingerprint in its `Welcome` is rejected at dial time as a typed
/// `PlanMismatch` — before it can serve a single wrong partial.
#[test]
fn plan_mismatch_is_rejected_at_dial_time() {
    let n = 24;
    let a = chaos_fixture(n);
    let plan = ShardPlan::uniform(n, 2).with_fingerprints_of(&a);

    // Wrong shard/range: cross-wire the two hosts' addresses.
    let (hosts, groups) = spawn_replicated_hosts(&a, &plan, 1);
    let crossed = vec![groups[1].clone(), groups[0].clone()];
    match ShardedEngine::<f64, f64, PlusTimes>::connect_replicated(
        plan.clone(),
        n,
        PlusTimes,
        &crossed,
        failover_config(),
        ObsConfig::default(),
    ) {
        Err(ConnectError::PlanMismatch { shard: 0, reason, .. }) => {
            assert!(reason.contains("shard"), "reason should name the contradiction: {reason}")
        }
        Err(other) => panic!("crossed wiring must be PlanMismatch, got {other:?}"),
        Ok(_) => panic!("crossed wiring must not dial"),
    }

    // Wrong fingerprint: the fleet serves a structurally different matrix.
    let mut coo = CooMatrix::new(n, n);
    for j in 0..n {
        coo.push((j + 1) % n, j, 1.0);
    }
    let b = CscMatrix::from_coo(coo, |x, y| x + y);
    let stale_plan = ShardPlan::uniform(n, 2).with_fingerprints_of(&b);
    match ShardedEngine::<f64, f64, PlusTimes>::connect_replicated(
        stale_plan,
        n,
        PlusTimes,
        &groups,
        failover_config(),
        ObsConfig::default(),
    ) {
        Err(ConnectError::PlanMismatch { reason, .. }) => {
            assert!(reason.contains("fingerprint"), "reason should name the fingerprint: {reason}")
        }
        Err(other) => panic!("stale fingerprint must be PlanMismatch, got {other:?}"),
        Ok(_) => panic!("a stale fingerprint must not dial"),
    }

    // The matching plan still dials fine — and counts the rejections above.
    let router = ShardedEngine::<f64, f64, PlusTimes>::connect_replicated(
        plan,
        n,
        PlusTimes,
        &groups,
        failover_config(),
        ObsConfig::default(),
    )
    .expect("the truthful fleet dials");
    drop(router);
    for group in hosts {
        for host in group {
            host.shutdown();
        }
    }
}

/// Tentpole acceptance: the background heartbeat marks a dead primary
/// unhealthy **between** flushes, so the next flush routes straight to the
/// replica — no mid-flush failover needed.
#[test]
fn heartbeat_marks_dead_replica_unhealthy_before_a_flush() {
    let n = 24;
    let a = chaos_fixture(n);
    let plan = ShardPlan::uniform(n, 1).with_fingerprints_of(&a);
    let frontier = SparseVec::from_pairs(n, vec![(5, 2.0)]).unwrap();
    let want = oracle_result(&a, &frontier);

    let (mut hosts, groups) = spawn_replicated_hosts(&a, &plan, 2);
    let config = TcpConfig {
        connect_retries: 0,
        heartbeat: Some(Duration::from_millis(10)),
        // A cooldown far longer than the test: once the heartbeat trips the
        // dead primary, nothing re-admits it.
        breaker_cooldown: Duration::from_secs(60),
        ..TcpConfig::default()
    };
    let router = ShardedEngine::<f64, f64, PlusTimes>::connect_replicated(
        plan,
        n,
        PlusTimes,
        &groups,
        config,
        ObsConfig::default(),
    )
    .expect("dial both replicas");

    hosts[0].remove(0).kill();
    // Give the 10 ms heartbeat ample time to notice the corpse.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let snap = router.obs().snapshot();
        if snap.gauge("net.health.unhealthy").unwrap_or(0) >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "heartbeat never marked the dead primary unhealthy");
        std::thread::sleep(Duration::from_millis(5));
    }
    let snap = router.obs().snapshot();
    assert!(snap.counter("net.health.probes").unwrap_or(0) >= 1, "probes must be counted");
    assert!(snap.counter("net.health.failures").unwrap_or(0) >= 1, "the death is a probe failure");

    // The flush that follows routes to the replica *first*: it serves with
    // zero mid-flush failovers.
    let ticket = router.submit(MxvRequest::new(frontier));
    let outcome = router.flush();
    assert_eq!(outcome.failed, 0, "replica serves: {:?}", outcome.failures);
    let got = ticket.try_take().expect("resolved").expect("serves");
    assert!(got.same_entries(&want), "heartbeat-routed result diverged");
    let snap = router.obs().snapshot();
    assert_eq!(
        snap.counter("shard.replica.failovers").unwrap_or(0),
        0,
        "the heartbeat routed around the corpse before the flush"
    );

    drop(router);
    for group in hosts {
        for host in group {
            host.shutdown();
        }
    }
}
