//! Property-based tests for the batched SpMSpV subsystem: for any operands,
//! the fused kernel [`SpMSpVBucketBatch`], the fallback [`NaiveBatch`] and
//! `k` independent [`spmspv_reference`] calls must agree — across semirings
//! (`PlusTimes`, the BFS `Select2ndMin`), sorted and unsorted lane storage,
//! and batch widths `k ∈ {1, 3, 32}`.
//!
//! Entry values are small integers (stored as `f64` where applicable) so
//! floating-point addition is exact and results compare exactly regardless
//! of reduction order.

use std::sync::Arc;

use proptest::prelude::*;
use sparse_substrate::ops::{spmspv_batch_reference, spmspv_reference};
use sparse_substrate::{
    CooMatrix, CscMatrix, MaskBits, PlusTimes, Select2ndMin, SparseVec, SparseVecBatch,
};
use spmspv::batch::{NaiveBatch, SpMSpVBatch, SpMSpVBucketBatch};
use spmspv::{
    build_batch_algorithm, AdaptiveBatch, AdaptiveConfig, BatchMaskView, MaskMode, SpMSpV,
    SpMSpVBucket, SpMSpVOptions, SpaBackend,
};

/// Strategy: a random sparse matrix with up to `max_dim` rows/columns and
/// small-integer entries.
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = CscMatrix<f64>> {
    (2usize..max_dim, 2usize..max_dim).prop_flat_map(|(m, n)| {
        let entry = (0..m, 0..n, 1i32..16);
        proptest::collection::vec(entry, 0..(m * n).min(300)).prop_map(move |entries| {
            let mut coo = CooMatrix::new(m, n);
            for (i, j, v) in entries {
                coo.push(i, j, v as f64);
            }
            CscMatrix::from_coo(coo, |a, b| a + b)
        })
    })
}

/// Strategy: one sparse lane of dimension `n` with integer values, stored in
/// ascending or (when `reversed`) descending index order so both sorted and
/// unsorted inputs are exercised.
fn lane_strategy(n: usize) -> impl Strategy<Value = SparseVec<f64>> {
    (proptest::collection::btree_map(0..n, 1i32..16, 0..n.min(40)), any::<bool>()).prop_map(
        move |(map, reversed)| {
            let mut pairs: Vec<(usize, f64)> =
                map.into_iter().map(|(i, v)| (i, v as f64)).collect();
            if reversed {
                pairs.reverse();
            }
            SparseVec::from_pairs(n, pairs).expect("btree_map keys are unique and in range")
        },
    )
}

/// Strategy: a batch of `k ∈ {1, 3, 32}` lanes conforming to `a`.
fn batch_operands(max_dim: usize) -> impl Strategy<Value = (CscMatrix<f64>, SparseVecBatch<f64>)> {
    matrix_strategy(max_dim).prop_flat_map(|a| {
        let n = a.ncols();
        let k = prop_oneof![Just(1usize), Just(3usize), Just(32usize)];
        (Just(a), k.prop_flat_map(move |k| proptest::collection::vec(lane_strategy(n), k..k + 1)))
            .prop_map(|(a, lanes)| {
                let batch = SparseVecBatch::from_lanes(&lanes).expect("lanes share n");
                (a, batch)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bucket_batch_equals_naive_equals_reference_plus_times(
        (a, x) in batch_operands(50),
        threads in 1usize..5,
        buckets_per_thread in 1usize..6,
        sorted in any::<bool>(),
    ) {
        let opts = SpMSpVOptions::with_threads(threads)
            .sorted(sorted)
            .buckets_per_thread(buckets_per_thread);
        let expected = spmspv_batch_reference(&a, &x, &PlusTimes);

        let mut fused = SpMSpVBucketBatch::new(&a, opts.clone());
        let y = fused.multiply_batch(&x, &PlusTimes);
        prop_assert!(y.same_entries(&expected), "fused kernel diverged from reference");

        let mut naive = NaiveBatch::new(&a, opts);
        let yn = naive.multiply_batch(&x, &PlusTimes);
        prop_assert!(y.same_entries(&yn), "fused kernel diverged from NaiveBatch");

        // Structural invariants, lane by lane.
        prop_assert_eq!(y.len(), a.nrows());
        prop_assert_eq!(y.k(), x.k());
        for l in 0..y.k() {
            let (indices, _) = y.lane(l);
            let mut seen = indices.to_vec();
            seen.sort_unstable();
            let before = seen.len();
            seen.dedup();
            prop_assert_eq!(before, seen.len(), "duplicate indices in lane {}", l);
            prop_assert!(seen.iter().all(|&i| i < a.nrows()), "lane {} out of bounds", l);
            if sorted {
                prop_assert!(
                    indices.windows(2).all(|w| w[0] < w[1]),
                    "lane {} unsorted despite sorted_output", l
                );
            }
        }
    }

    #[test]
    fn bucket_batch_matches_reference_on_bfs_semiring(
        (a, x) in batch_operands(50),
        threads in 1usize..5,
    ) {
        // Reinterpret each lane as a BFS frontier: the value carried for
        // index i is i itself (the discovering vertex's id).
        let frontier_lanes: Vec<SparseVec<usize>> = (0..x.k())
            .map(|l| {
                let (indices, _) = x.lane(l);
                SparseVec::from_pairs(x.len(), indices.iter().map(|&i| (i, i)).collect())
                    .expect("indices already validated")
            })
            .collect();
        let frontiers = SparseVecBatch::from_lanes(&frontier_lanes).expect("lanes share n");

        let expected = spmspv_batch_reference(&a, &frontiers, &Select2ndMin);
        let mut fused = SpMSpVBucketBatch::new(&a, SpMSpVOptions::with_threads(threads));
        let y = fused.multiply_batch(&frontiers, &Select2ndMin);
        prop_assert!(y.same_entries(&expected), "Select2ndMin batch diverged from reference");

        let mut naive = NaiveBatch::new(&a, SpMSpVOptions::with_threads(threads));
        let yn = naive.multiply_batch(&frontiers, &Select2ndMin);
        prop_assert!(y.same_entries(&yn), "Select2ndMin batch diverged from NaiveBatch");
    }

    #[test]
    fn sorted_bucket_batch_is_bit_identical_to_k_single_calls(
        (a, x) in batch_operands(40),
        batch_threads in 1usize..5,
        single_threads in 1usize..5,
    ) {
        // With sorted output, lane l's reduction order inside the batched
        // kernel is identical to the single-vector kernel's, so equality is
        // exact (bit-level), not just up to rounding — even though thread
        // counts differ between the two runs.
        let mut fused =
            SpMSpVBucketBatch::new(&a, SpMSpVOptions::with_threads(batch_threads));
        let y = fused.multiply_batch(&x, &PlusTimes);
        let mut single =
            SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(single_threads));
        for l in 0..x.k() {
            let lane_y = single.multiply(&x.lane_vec(l), &PlusTimes);
            prop_assert_eq!(
                y.lane_vec(l), lane_y,
                "lane {} not bit-identical to an independent SpMSpVBucket call", l
            );
        }
    }

    /// Tentpole property: the three SPA backends are **bit-identical** to
    /// each other on the fused bucket kernel — any semiring, any
    /// sortedness, any mask mode, k ∈ {1, 3, 32} — and match the
    /// [`NaiveBatch`] oracle (bit-identical when sorted, entry-identical
    /// otherwise). The accumulate order is backend-independent, so storage
    /// layout must never leak into results.
    #[test]
    fn every_spa_backend_matches_the_naive_oracle(
        (a, x) in batch_operands(40),
        threads in 1usize..5,
        sorted in any::<bool>(),
        mask_case in 0usize..5,
    ) {
        let m = a.nrows();
        let k = x.k();
        // Mask shapes: none, shared keep/complement, per-lane keep/complement.
        let shared = MaskBits::from_indices(m, (0..m).step_by(3));
        let per_lane: Vec<Arc<MaskBits>> = (0..k)
            .map(|l| Arc::new(MaskBits::from_indices(m, (l % 4..m).step_by(2 + l % 3))))
            .collect();
        let view = match mask_case {
            0 => None,
            1 => Some(BatchMaskView::Shared(spmspv::MaskView::new(&shared, MaskMode::Keep))),
            2 => Some(BatchMaskView::Shared(spmspv::MaskView::new(
                &shared,
                MaskMode::Complement,
            ))),
            3 => Some(BatchMaskView::PerLane { masks: &per_lane, mode: MaskMode::Keep }),
            _ => Some(BatchMaskView::PerLane { masks: &per_lane, mode: MaskMode::Complement }),
        };

        let opts = SpMSpVOptions::with_threads(threads).sorted(sorted);
        let mut naive = NaiveBatch::new(&a, opts.clone());
        let oracle = naive.multiply_batch_masked(&x, &PlusTimes, view.as_ref());

        let mut first: Option<SparseVecBatch<f64>> = None;
        for backend in SpaBackend::concrete() {
            let mut fused =
                SpMSpVBucketBatch::new(&a, opts.clone().spa_backend(backend));
            let y = fused.multiply_batch_masked(&x, &PlusTimes, view.as_ref());
            if sorted {
                prop_assert_eq!(
                    &y, &oracle,
                    "{} not bit-identical to the naive oracle (mask {})",
                    backend, mask_case
                );
            } else {
                prop_assert!(
                    y.same_entries(&oracle),
                    "{} entries diverged from the naive oracle (mask {})",
                    backend, mask_case
                );
            }
            match &first {
                None => first = Some(y),
                Some(reference) => prop_assert_eq!(
                    reference, &y,
                    "backends diverged bit-wise at {} (mask {})",
                    backend, mask_case
                ),
            }
        }
    }

    /// The adaptive batch dispatcher always produces exactly what its
    /// resolved `(kernel, backend)` delegate produces — whatever it picks.
    #[test]
    fn adaptive_always_matches_its_resolved_delegate(
        (a, x) in batch_operands(40),
        threads in 1usize..5,
        cutoff in prop_oneof![Just(0usize), Just(64), Just(1 << 22)],
    ) {
        let opts = SpMSpVOptions::with_threads(threads)
            .adaptive(AdaptiveConfig::default().rowsplit_flops_cutoff(cutoff));
        let mut adaptive: AdaptiveBatch<'_, f64, f64, PlusTimes> =
            AdaptiveBatch::new(&a, opts.clone());
        let y = adaptive.multiply_batch(&x, &PlusTimes);
        match adaptive.last_run_info() {
            // Empty inputs short-circuit before any merge runs, so there is
            // legitimately nothing to report.
            None => prop_assert!(x.is_empty(), "run info may only be absent for empty inputs"),
            Some(info) => {
                let mut fixed = build_batch_algorithm::<f64, f64, PlusTimes>(
                    &a,
                    info.kernel,
                    opts.spa_backend(info.backend),
                );
                let y_fixed = fixed.multiply_batch(&x, &PlusTimes);
                prop_assert_eq!(y, y_fixed, "adaptive diverged from its {} delegate", info);
            }
        }
    }

    #[test]
    fn batch_lanes_are_independent((a, x) in batch_operands(40)) {
        // Multiplying the whole batch must equal multiplying any sub-batch:
        // lanes never leak into each other.
        let mut fused = SpMSpVBucketBatch::new(&a, SpMSpVOptions::with_threads(2));
        let y_full = fused.multiply_batch(&x, &PlusTimes);
        let half = x.k().div_ceil(2);
        let sub = SparseVecBatch::from_lanes(&x.to_lanes()[..half]).expect("lanes share n");
        let y_sub = fused.multiply_batch(&sub, &PlusTimes);
        for l in 0..half {
            prop_assert_eq!(y_full.lane_vec(l), y_sub.lane_vec(l), "lane {} leaked", l);
        }
    }
}

/// Deterministic fixture check on the graph classes the paper benchmarks
/// (acceptance criterion: bit-identical on R-MAT and grid fixtures).
#[test]
fn bit_identical_on_rmat_and_grid_fixtures() {
    use sparse_substrate::gen::{grid2d, random_sparse_vec, rmat, RmatParams};

    let fixtures: Vec<(&str, CscMatrix<f64>)> =
        vec![("rmat", rmat(10, 8, RmatParams::graph500(), 17)), ("grid", grid2d(30, 34))];
    for (name, a) in fixtures {
        let n = a.ncols();
        for k in [1usize, 3, 32] {
            let lanes: Vec<SparseVec<f64>> =
                (0..k).map(|l| random_sparse_vec(n, (n / 8).max(1), 900 + l as u64)).collect();
            let x = SparseVecBatch::from_lanes(&lanes).unwrap();
            let mut fused = SpMSpVBucketBatch::new(&a, SpMSpVOptions::with_threads(4));
            let y = fused.multiply_batch(&x, &PlusTimes);
            let mut single = SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(3));
            for l in 0..k {
                let lane_y = single.multiply(&x.lane_vec(l), &PlusTimes);
                assert_eq!(y.lane_vec(l), lane_y, "{name}: lane {l} of k={k} not bit-identical");
            }
            // And the reference agrees up to rounding (random f64 values).
            let expected = spmspv_batch_reference(&a, &x, &PlusTimes);
            assert!(y.approx_same_entries(&expected, 1e-9), "{name}: reference disagrees");
        }
    }
}

/// The batched result of a single lane equals the plain single-vector
/// pipeline end to end (reference included), tying the two subsystems
/// together.
#[test]
fn single_lane_round_trip_through_both_pipelines() {
    use sparse_substrate::gen::{random_sparse_vec, rmat, RmatParams};

    let a = rmat(9, 6, RmatParams::web_like(), 23);
    let x = random_sparse_vec(a.ncols(), 100, 5);
    let batch_x = SparseVecBatch::from_single(&x);

    let mut fused = SpMSpVBucketBatch::new(&a, SpMSpVOptions::with_threads(2));
    let y_batch = fused.multiply_batch(&batch_x, &PlusTimes).lane_vec(0);
    let mut single = SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(2));
    let y_single = single.multiply(&x, &PlusTimes);
    let y_ref = spmspv_reference(&a, &x, &PlusTimes);

    assert_eq!(y_batch, y_single);
    assert!(y_batch.approx_same_entries(&y_ref, 1e-9));
}
