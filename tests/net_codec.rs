//! Property and adversarial tests for the shard wire codec
//! ([`spmspv::net`]): every frame **round-trips bit-identically over both
//! semiring scalar types** (`f64` and `usize`), through both the in-memory
//! encoder/decoder pair and the streaming reader/writer pair — and every
//! malformed byte sequence decodes to the *specific* typed [`DecodeError`]
//! it should, never a panic or an allocation proportional to a corrupt
//! length field.

use std::io::Cursor;

use proptest::prelude::*;
use sparse_substrate::{MaskBits, SparseVec};
use spmspv::engine::EngineError;
use spmspv::net::{
    decode_frame, encode_frame, read_frame, write_frame, DecodeError, Frame, WireError,
    WireFrontier, WireScalar, DEFAULT_MAX_FRAME, HEADER_LEN, MAGIC, VERSION,
};
use spmspv::{BatchAlgorithmKind, MaskMode};

/// Round-trips `frame` through the buffer codec *and* the streaming codec,
/// asserting byte counts agree and both decoded frames equal the original.
fn assert_round_trip<X, Y>(frame: &Frame<X, Y>) -> Result<(), TestCaseError>
where
    X: WireScalar + PartialEq + std::fmt::Debug,
    Y: WireScalar + PartialEq + std::fmt::Debug,
{
    let mut buf = Vec::new();
    let encoded = encode_frame(frame, &mut buf, DEFAULT_MAX_FRAME).expect("frame fits the limit");
    prop_assert_eq!(encoded, buf.len());
    prop_assert_eq!(&buf[..4], &MAGIC);
    prop_assert_eq!(buf[4], VERSION);

    let (decoded, consumed) = decode_frame::<X, Y>(&buf, DEFAULT_MAX_FRAME).expect("decodes");
    prop_assert_eq!(consumed, buf.len());
    prop_assert_eq!(&decoded, frame);

    let mut stream = Vec::new();
    let written = write_frame(&mut stream, frame, DEFAULT_MAX_FRAME).expect("writes");
    prop_assert_eq!(written, buf.len());
    let mut cursor = Cursor::new(stream);
    let (streamed, read) = read_frame::<X, Y, _>(&mut cursor, DEFAULT_MAX_FRAME)
        .expect("reads")
        .expect("one frame present");
    prop_assert_eq!(read, buf.len());
    prop_assert_eq!(&streamed, frame);
    // Clean end-of-stream after the frame, not an error.
    prop_assert!(matches!(read_frame::<X, Y, _>(&mut cursor, DEFAULT_MAX_FRAME), Ok(None)));
    Ok(())
}

/// One generated frontier, scalar-agnostic: entry values are small
/// integers so the same draw materializes exactly as `f64` and as `usize`.
#[derive(Debug, Clone)]
struct GenFrontier {
    n: usize,
    entries: Vec<(usize, usize)>,
    request: u64,
    shard: usize,
    deadline_micros: Option<u64>,
    mask: Option<(Vec<usize>, MaskMode)>,
    algorithm: Option<BatchAlgorithmKind>,
}

impl GenFrontier {
    fn frame<X: WireScalar>(&self, value: impl Fn(usize) -> X) -> Frame<X, X> {
        let pairs: Vec<(usize, X)> = self.entries.iter().map(|&(i, v)| (i, value(v))).collect();
        Frame::Frontier(WireFrontier {
            request: self.request,
            shard: self.shard,
            slice: SparseVec::from_pairs(self.n, pairs).expect("unique in-range indices"),
            deadline_micros: self.deadline_micros,
            mask: self
                .mask
                .as_ref()
                .map(|(rows, mode)| (MaskBits::from_indices(self.n, rows.iter().copied()), *mode)),
            algorithm: self.algorithm,
        })
    }
}

fn frontier_strategy() -> impl Strategy<Value = GenFrontier> {
    (1usize..200).prop_flat_map(|n| {
        let entries = proptest::collection::btree_map(0..n, 0usize..1000, 0..n.min(24));
        let ids = (0u64..1_000_000, 0usize..512);
        let deadline = prop_oneof![Just(None), (0u64..5_000_000).prop_map(Some)];
        let mask = prop_oneof![
            Just(None),
            (proptest::collection::btree_map(0..n, 0usize..2, 0..n), any::<bool>()).prop_map(
                |(rows, keep)| {
                    let mode = if keep { MaskMode::Keep } else { MaskMode::Complement };
                    Some((rows.into_keys().collect::<Vec<usize>>(), mode))
                }
            ),
        ];
        let algorithm = (0u64..5).prop_map(|b| match b {
            0 => None,
            1 => Some(BatchAlgorithmKind::Bucket),
            2 => Some(BatchAlgorithmKind::Naive),
            3 => Some(BatchAlgorithmKind::CombBlasRowSplit),
            _ => Some(BatchAlgorithmKind::Adaptive),
        });
        (Just(n), entries, ids, (deadline, mask, algorithm)).prop_map(
            |(n, entries, (request, shard), (deadline_micros, mask, algorithm))| GenFrontier {
                n,
                entries: entries.into_iter().collect(),
                request,
                shard,
                deadline_micros,
                mask,
                algorithm,
            },
        )
    })
}

fn error_strategy() -> impl Strategy<Value = EngineError> {
    prop_oneof![
        Just(EngineError::Cancelled),
        Just(EngineError::DeadlineExceeded),
        Just(EngineError::Overloaded),
        (0usize..4, 0usize..64).prop_map(|(pick, len)| {
            // Exercise empty, ASCII, and multi-byte UTF-8 messages.
            let seed =
                ["", "shard 3: engine exploded", "µs-präzise Frist überschritten", "時限"][pick];
            EngineError::KernelFailed(seed.chars().cycle().take(len).collect())
        }),
        Just(EngineError::Disconnected),
        Just(EngineError::WaitTimeout),
        Just(EngineError::AlreadyTaken),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Frontiers — every sidecar combination — round-trip bitwise over
    /// both semiring scalar types.
    #[test]
    fn frontier_round_trips_over_both_scalars(g in frontier_strategy()) {
        assert_round_trip(&g.frame::<f64>(|v| v as f64 * 0.5 - 17.25))?;
        assert_round_trip(&g.frame::<usize>(|v| v * 3 + 1))?;
    }

    /// Partials round-trip over both scalar types.
    #[test]
    fn partial_round_trips_over_both_scalars(g in frontier_strategy()) {
        if let Frame::Frontier(w) = g.frame::<f64>(|v| -(v as f64) / 3.0) {
            assert_round_trip::<f64, f64>(
                &Frame::Partial { request: w.request, shard: w.shard, partial: w.slice },
            )?;
        }
        if let Frame::Frontier(w) = g.frame::<usize>(|v| v) {
            assert_round_trip::<usize, usize>(
                &Frame::Partial { request: w.request, shard: w.shard, partial: w.slice },
            )?;
        }
    }

    /// Every error variant — including multi-byte UTF-8 `KernelFailed`
    /// messages — survives the wire.
    #[test]
    fn errors_and_control_frames_round_trip(
        error in error_strategy(),
        (request, shard) in (0u64..1_000_000, 0usize..512),
        (lanes, requests, micros) in (0u64..100_000, 0u64..10_000, 0u64..60_000_000),
    ) {
        assert_round_trip::<f64, f64>(&Frame::Error { request, shard, error: error.clone() })?;
        assert_round_trip::<usize, usize>(&Frame::Error { request, shard, error })?;
        assert_round_trip::<f64, f64>(&Frame::Flush)?;
        assert_round_trip::<usize, usize>(&Frame::Goodbye)?;
        assert_round_trip::<f64, f64>(
            &Frame::Done { shard, lanes, requests, execute_micros: micros },
        )?;
    }

    /// A byte stream of several frames reads back in order through the
    /// streaming decoder, ending with a clean `Ok(None)`.
    #[test]
    fn frame_sequences_stream_back_in_order(
        frontiers in proptest::collection::vec(frontier_strategy(), 1..5),
    ) {
        let frames: Vec<Frame<f64, f64>> = frontiers
            .iter()
            .map(|g| g.frame::<f64>(|v| v as f64))
            .chain([Frame::Flush, Frame::Goodbye])
            .collect();
        let mut stream = Vec::new();
        for frame in &frames {
            write_frame(&mut stream, frame, DEFAULT_MAX_FRAME).expect("writes");
        }
        let mut cursor = Cursor::new(stream);
        for frame in &frames {
            let (got, _) = read_frame::<f64, f64, _>(&mut cursor, DEFAULT_MAX_FRAME)
                .expect("reads")
                .expect("frame present");
            prop_assert_eq!(&got, frame);
        }
        prop_assert!(matches!(read_frame::<f64, f64, _>(&mut cursor, DEFAULT_MAX_FRAME), Ok(None)));
    }

    /// Truncating a valid frame at *any* byte boundary decodes to
    /// `Truncated` (or `Ok(None)` at exactly zero bytes for the streaming
    /// reader) — never a panic, never a partial frame.
    #[test]
    fn every_truncation_is_typed(g in frontier_strategy(), cut in 0.0f64..1.0) {
        let frame = g.frame::<f64>(|v| v as f64);
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf, DEFAULT_MAX_FRAME).expect("encodes");
        let cut = ((buf.len() - 1) as f64 * cut) as usize;
        prop_assert_eq!(
            decode_frame::<f64, f64>(&buf[..cut], DEFAULT_MAX_FRAME).unwrap_err(),
            DecodeError::Truncated
        );
        let mut cursor = Cursor::new(&buf[..cut]);
        match read_frame::<f64, f64, _>(&mut cursor, DEFAULT_MAX_FRAME) {
            Ok(None) => prop_assert_eq!(cut, 0, "Ok(None) only at a clean frame boundary"),
            Err(WireError::Decode(DecodeError::Truncated)) => prop_assert!(cut > 0),
            other => return Err(TestCaseError::fail(format!("unexpected: {other:?}"))),
        }
    }
}

/// Encodes one minimal frontier (`dim 4`, one entry, no sidecars) for the
/// byte-surgery tests below. The payload layout is pinned by the protocol:
/// `request u64 | shard u32 | scalar tag u8 | dim u64 | nnz u64 | indices |
/// values | deadline flag | mask flag | algorithm`.
fn tiny_frontier_bytes() -> Vec<u8> {
    let frame: Frame<f64, f64> = Frame::Frontier(WireFrontier {
        request: 7,
        shard: 2,
        slice: SparseVec::from_pairs(4, vec![(2, 1.5)]).unwrap(),
        deadline_micros: None,
        mask: None,
        algorithm: None,
    });
    let mut buf = Vec::new();
    encode_frame(&frame, &mut buf, DEFAULT_MAX_FRAME).unwrap();
    buf
}

fn decode_err(buf: &[u8]) -> DecodeError {
    decode_frame::<f64, f64>(buf, DEFAULT_MAX_FRAME).unwrap_err()
}

#[test]
fn adversarial_header_faults_are_typed() {
    let good = tiny_frontier_bytes();

    // Wrong magic.
    let mut buf = good.clone();
    buf[..4].copy_from_slice(b"HTTP");
    assert_eq!(decode_err(&buf), DecodeError::BadMagic(*b"HTTP"));

    // Future protocol version.
    let mut buf = good.clone();
    buf[4] = VERSION + 1;
    assert_eq!(decode_err(&buf), DecodeError::BadVersion(VERSION + 1));

    // Unknown frame tag.
    let mut buf = good.clone();
    buf[5] = 99;
    assert_eq!(decode_err(&buf), DecodeError::BadTag(99));

    // Declared payload larger than the limit: rejected from the header
    // alone, before any payload is buffered.
    let mut buf = good.clone();
    buf[6..HEADER_LEN].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        decode_err(&buf),
        DecodeError::Oversize { len: u32::MAX as usize, limit: DEFAULT_MAX_FRAME }
    );
    let mut cursor = Cursor::new(&buf);
    assert!(matches!(
        read_frame::<f64, f64, _>(&mut cursor, DEFAULT_MAX_FRAME),
        Err(WireError::Decode(DecodeError::Oversize { .. }))
    ));

    // The same header faults surface identically from the streaming reader.
    let mut buf = good.clone();
    buf[..4].copy_from_slice(b"NOPE");
    let mut cursor = Cursor::new(&buf);
    assert!(matches!(
        read_frame::<f64, f64, _>(&mut cursor, DEFAULT_MAX_FRAME),
        Err(WireError::Decode(DecodeError::BadMagic(_)))
    ));
}

#[test]
fn scalar_mismatch_is_loud_in_both_directions() {
    // A frontier of f64 read by a host compiled for usize frontiers.
    let buf = tiny_frontier_bytes();
    assert_eq!(
        decode_frame::<usize, usize>(&buf, DEFAULT_MAX_FRAME).unwrap_err(),
        DecodeError::ScalarMismatch {
            expected: <usize as WireScalar>::TAG,
            got: <f64 as WireScalar>::TAG
        }
    );

    // A partial of usize read by a router expecting f64 partials.
    let partial: Frame<usize, usize> = Frame::Partial {
        request: 1,
        shard: 0,
        partial: SparseVec::from_pairs(3, vec![(0, 9usize)]).unwrap(),
    };
    let mut buf = Vec::new();
    encode_frame(&partial, &mut buf, DEFAULT_MAX_FRAME).unwrap();
    assert_eq!(
        decode_frame::<f64, f64>(&buf, DEFAULT_MAX_FRAME).unwrap_err(),
        DecodeError::ScalarMismatch {
            expected: <f64 as WireScalar>::TAG,
            got: <usize as WireScalar>::TAG
        }
    );
}

#[test]
fn corrupt_payloads_are_typed_not_panics() {
    // Payload byte offsets for the tiny frontier (one entry, no sidecars):
    // request 0..8 | shard 8..12 | tag 12 | dim 13..21 | nnz 21..29 |
    // index 29..37 | value 37..45 | deadline flag 45 | mask flag 46 |
    // algorithm 47.
    let good = tiny_frontier_bytes();
    let p = HEADER_LEN;

    // Out-of-range sparse index.
    let mut buf = good.clone();
    buf[p + 29..p + 37].copy_from_slice(&100u64.to_le_bytes());
    assert_eq!(decode_err(&buf), DecodeError::Corrupt("vector index out of range"));

    // Unknown deadline flag / mask flag / algorithm byte.
    for (offset, want) in
        [(45, "unknown deadline flag"), (46, "unknown mask flag"), (47, "unknown algorithm byte")]
    {
        let mut buf = good.clone();
        buf[p + offset] = 0xEE;
        assert_eq!(decode_err(&buf), DecodeError::Corrupt(want), "offset {offset}");
    }

    // An absurd nnz in a size-checked count field: rejected as Truncated
    // *before* any allocation is sized from it.
    let mut buf = good.clone();
    buf[p + 21..p + 29].copy_from_slice(&u64::MAX.to_le_bytes());
    assert_eq!(decode_err(&buf), DecodeError::Truncated);

    // Trailing garbage after a structurally complete payload.
    let mut buf = good.clone();
    buf.push(0xAB);
    let declared = u32::from_le_bytes(buf[6..HEADER_LEN].try_into().unwrap()) + 1;
    buf[6..HEADER_LEN].copy_from_slice(&declared.to_le_bytes());
    assert_eq!(decode_err(&buf), DecodeError::Corrupt("trailing bytes after payload"));

    // A mask whose tail word has bits beyond the declared length.
    let masked: Frame<f64, f64> = Frame::Frontier(WireFrontier {
        request: 1,
        shard: 0,
        slice: SparseVec::new(10),
        deadline_micros: None,
        mask: Some((MaskBits::from_indices(10, [3usize]), MaskMode::Keep)),
        algorithm: None,
    });
    let mut buf = Vec::new();
    encode_frame(&masked, &mut buf, DEFAULT_MAX_FRAME).unwrap();
    // Empty slice ⇒ mask flag sits at payload offset 30; its single word
    // occupies the final 9..1 bytes before the algorithm byte.
    let word_at = buf.len() - 9;
    buf[word_at..word_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    assert_eq!(decode_err(&buf), DecodeError::Corrupt("inconsistent mask words"));

    // A KernelFailed message that is not UTF-8.
    let err: Frame<f64, f64> =
        Frame::Error { request: 1, shard: 0, error: EngineError::KernelFailed("ab".into()) };
    let mut buf = Vec::new();
    encode_frame(&err, &mut buf, DEFAULT_MAX_FRAME).unwrap();
    let msg_at = buf.len() - 2;
    buf[msg_at] = 0xFF;
    assert_eq!(decode_err(&buf), DecodeError::Corrupt("error message not UTF-8"));

    // An unknown error code.
    let mut buf2 = good.clone();
    buf2[5] = 3; // TAG_ERROR with a frontier-sized payload is nonsense, so
                 // build a real error frame instead and poke its code byte.
    let err: Frame<f64, f64> = Frame::Error { request: 1, shard: 0, error: EngineError::Cancelled };
    let mut buf = Vec::new();
    encode_frame(&err, &mut buf, DEFAULT_MAX_FRAME).unwrap();
    buf[p + 12] = 200;
    assert_eq!(decode_err(&buf), DecodeError::Corrupt("unknown error code"));
    let _ = buf2;
}

#[test]
fn empty_and_huge_frontiers_round_trip() {
    // Completely empty frontier on a dimension-1 vector.
    let empty: Frame<usize, usize> = Frame::Frontier(WireFrontier {
        request: 0,
        shard: 0,
        slice: SparseVec::new(1),
        deadline_micros: Some(0),
        mask: None,
        algorithm: None,
    });
    assert_round_trip(&empty).unwrap();

    // A dense 100k-entry frontier with a full-height mask: well past any
    // small-buffer path, still bitwise.
    let n = 100_000;
    let pairs: Vec<(usize, f64)> = (0..n).map(|i| (i, (i as f64).sin() * 1e9 + 0.125)).collect();
    let huge: Frame<f64, f64> = Frame::Frontier(WireFrontier {
        request: u64::MAX,
        shard: 4_000_000,
        slice: SparseVec::from_pairs(n, pairs).unwrap(),
        deadline_micros: Some(u64::MAX),
        mask: Some((MaskBits::from_indices(n, (0..n).step_by(3)), MaskMode::Complement)),
        algorithm: Some(BatchAlgorithmKind::Adaptive),
    });
    assert_round_trip(&huge).unwrap();
}

#[test]
fn encoder_enforces_the_frame_limit_and_restores_the_buffer() {
    let frame: Frame<f64, f64> = Frame::Frontier(WireFrontier {
        request: 1,
        shard: 0,
        slice: SparseVec::from_pairs(64, (0..64).map(|i| (i, i as f64)).collect()).unwrap(),
        deadline_micros: None,
        mask: None,
        algorithm: None,
    });
    let mut buf = b"prefix".to_vec();
    let err = encode_frame(&frame, &mut buf, 16).unwrap_err();
    assert!(matches!(err, DecodeError::Oversize { limit: 16, .. }));
    // The failed encode left no partial frame behind the caller's back.
    assert_eq!(buf, b"prefix");

    // The same frame encodes fine under the default limit, and a decoder
    // configured *smaller* then rejects it from the header.
    let mut buf = Vec::new();
    encode_frame(&frame, &mut buf, DEFAULT_MAX_FRAME).unwrap();
    assert!(matches!(
        decode_frame::<f64, f64>(&buf, 16).unwrap_err(),
        DecodeError::Oversize { limit: 16, .. }
    ));
}

// ---------------------------------------------------------------------------
// Version 2: discovery / health frames and the Partial sort invariant.
// ---------------------------------------------------------------------------

/// The v2 handshake and heartbeat frames round-trip bit-identically over
/// both scalar types (they carry no scalars, but the codec is generic).
#[test]
fn discovery_and_health_frames_round_trip() {
    assert_round_trip::<f64, f64>(&Frame::Hello).unwrap();
    assert_round_trip::<usize, usize>(&Frame::Hello).unwrap();
    for (shard, col_start, col_end, nrows, fingerprint) in [
        (0usize, 0usize, 0usize, 0usize, 0u64),
        (3, 17, 4096, 100_000, 0xdead_beef_cafe_f00d),
        (511, usize::MAX / 2, usize::MAX / 2 + 1, usize::MAX / 4, u64::MAX),
    ] {
        let welcome: Frame<f64, f64> =
            Frame::Welcome { shard, col_start, col_end, nrows, fingerprint };
        assert_round_trip(&welcome).unwrap();
        let welcome: Frame<usize, usize> =
            Frame::Welcome { shard, col_start, col_end, nrows, fingerprint };
        assert_round_trip(&welcome).unwrap();
    }
    for nonce in [0u64, 42, u64::MAX] {
        assert_round_trip::<f64, f64>(&Frame::Ping { nonce }).unwrap();
        assert_round_trip::<usize, usize>(&Frame::Pong { nonce }).unwrap();
    }
}

/// A `Welcome` whose column range is inverted is corrupt, not a frame the
/// router has to reason about.
#[test]
fn inverted_welcome_range_is_corrupt() {
    let bad: Frame<f64, f64> =
        Frame::Welcome { shard: 0, col_start: 9, col_end: 3, nrows: 10, fingerprint: 1 };
    let mut buf = Vec::new();
    encode_frame(&bad, &mut buf, DEFAULT_MAX_FRAME).unwrap();
    assert!(matches!(decode_err(&buf), DecodeError::Corrupt(_)));
}

/// Unsorted kernel output is canonicalized at encode time: the frame on
/// the wire carries strictly increasing indices and decodes to the sorted
/// vector, so a cross-transport merge sees one canonical order.
#[test]
fn unsorted_partial_encodes_canonically() {
    let mut partial = SparseVec::<f64>::new(8);
    partial.push(5, 5.0);
    partial.push(1, 1.0);
    partial.push(3, 3.0);
    assert!(!partial.is_sorted());
    let frame: Frame<f64, f64> = Frame::Partial { request: 9, shard: 1, partial: partial.clone() };
    let mut buf = Vec::new();
    encode_frame(&frame, &mut buf, DEFAULT_MAX_FRAME).unwrap();
    let (decoded, _) = decode_frame::<f64, f64>(&buf, DEFAULT_MAX_FRAME).unwrap();
    match decoded {
        Frame::Partial { request: 9, shard: 1, partial: got } => {
            assert!(got.is_sorted(), "wire order must be canonical");
            assert_eq!(got, partial.sorted());
        }
        other => panic!("expected the partial back, got {other:?}"),
    }
}

/// Byte-surgery: a `Partial` whose indices are non-monotone or duplicated
/// on the wire is rejected at decode time — a hostile host cannot smuggle
/// shuffled or repeated rows into the merge fold.
#[test]
fn non_monotone_partial_bytes_are_corrupt() {
    // Payload layout: request u64 | shard u32 | ytag u8 | len u64 | nnz u64
    // | indices u64×nnz | values — first index at HEADER_LEN + 29.
    let first_index = HEADER_LEN + 8 + 4 + 1 + 8 + 8;
    let sorted = SparseVec::from_pairs(8, vec![(1, 1.0), (3, 3.0), (5, 5.0)]).unwrap();
    let frame: Frame<f64, f64> = Frame::Partial { request: 9, shard: 1, partial: sorted };
    let mut good = Vec::new();
    encode_frame(&frame, &mut good, DEFAULT_MAX_FRAME).unwrap();
    assert!(decode_frame::<f64, f64>(&good, DEFAULT_MAX_FRAME).is_ok());

    // Swap the first two index words: 3, 1, 5 — descending start.
    let mut swapped = good.clone();
    swapped[first_index..first_index + 8].copy_from_slice(&3u64.to_le_bytes());
    swapped[first_index + 8..first_index + 16].copy_from_slice(&1u64.to_le_bytes());
    assert_eq!(
        decode_err(&swapped),
        DecodeError::Corrupt("partial indices not strictly increasing")
    );

    // Duplicate an index: 1, 1, 5 — monotone requires *strictly* increasing.
    let mut duped = good.clone();
    duped[first_index + 8..first_index + 16].copy_from_slice(&1u64.to_le_bytes());
    assert_eq!(decode_err(&duped), DecodeError::Corrupt("partial indices not strictly increasing"));

    // And the byzantine host's signature move: an index past the vector's
    // length is out of range, not merged.
    let mut oversize = good;
    oversize[first_index + 16..first_index + 24].copy_from_slice(&u64::MAX.to_le_bytes());
    assert_eq!(decode_err(&oversize), DecodeError::Corrupt("vector index out of range"));
}
