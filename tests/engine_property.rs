//! Property tests for the serving engine: **N requests coalesced through
//! [`Engine`] produce results identical to N independent
//! [`PreparedMxv::run`] calls** — across semirings (`PlusTimes`,
//! `Select2ndMin`), mask modes (unmasked / keep / complement, mixed within
//! one flush), sorted and unsorted request storage, width budgets that force
//! multi-chunk flushes, and mid-flight lane retirement (cancelled tickets
//! and closed sessions).
//!
//! Entry values are small integers so floating-point addition is exact and
//! sorted-mode results compare bit-for-bit.

use proptest::prelude::*;
use sparse_substrate::{CooMatrix, CscMatrix, MaskBits, PlusTimes, Select2ndMin, SparseVec};
use spmspv::engine::{Engine, EngineConfig, EngineError, MxvRequest};
use spmspv::ops::Mxv;
use spmspv::{BatchAlgorithmKind, MaskMode, SpMSpVOptions};

/// Strategy: a random sparse matrix with small-integer entries.
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = CscMatrix<f64>> {
    (3usize..max_dim, 3usize..max_dim).prop_flat_map(|(m, n)| {
        let entry = (0..m, 0..n, 1i32..16);
        proptest::collection::vec(entry, 0..(m * n).min(250)).prop_map(move |entries| {
            let mut coo = CooMatrix::new(m, n);
            for (i, j, v) in entries {
                coo.push(i, j, v as f64);
            }
            CscMatrix::from_coo(coo, |a, b| a + b)
        })
    })
}

/// One generated client request: frontier (possibly stored in descending
/// order), mask choice, and whether the client retires it before the flush.
#[derive(Debug, Clone)]
struct GenRequest {
    frontier: SparseVec<f64>,
    mask: Option<(MaskBits, MaskMode)>,
    cancel: bool,
}

fn request_strategy(m: usize, n: usize) -> impl Strategy<Value = GenRequest> {
    let frontier = (proptest::collection::btree_map(0..n, 1i32..16, 0..n.min(30)), any::<bool>())
        .prop_map(move |(map, reversed)| {
            let mut pairs: Vec<(usize, f64)> =
                map.into_iter().map(|(i, v)| (i, v as f64)).collect();
            if reversed {
                pairs.reverse();
            }
            SparseVec::from_pairs(n, pairs).expect("unique in-range indices")
        });
    let mask = prop_oneof![
        Just(None),
        (proptest::collection::btree_map(0..m, 1i32..2, 0..m), any::<bool>()).prop_map(
            move |(rows, keep)| {
                let bits = MaskBits::from_indices(m, rows.into_keys());
                let mode = if keep { MaskMode::Keep } else { MaskMode::Complement };
                Some((bits, mode))
            }
        ),
    ];
    (frontier, mask, any::<bool>()).prop_map(|(frontier, mask, cancel)| GenRequest {
        frontier,
        mask,
        cancel,
    })
}

fn operands(max_dim: usize) -> impl Strategy<Value = (CscMatrix<f64>, Vec<GenRequest>)> {
    matrix_strategy(max_dim).prop_flat_map(|a| {
        let (m, n) = (a.nrows(), a.ncols());
        (Just(a), proptest::collection::vec(request_strategy(m, n), 1..14))
    })
}

/// The oracle: the request run alone through a single-vector prepared
/// descriptor with the same options.
fn independent_run(
    a: &CscMatrix<f64>,
    request: &GenRequest,
    options: &SpMSpVOptions,
) -> SparseVec<f64> {
    let op = Mxv::over(a).semiring(&PlusTimes).options(options.clone());
    let mut op = match &request.mask {
        Some((bits, mode)) => op.mask(bits, *mode).prepare(),
        None => op.prepare(),
    };
    op.run(&request.frontier)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The headline property: submit everything, cancel the retiring
    /// subset mid-flight, flush once, and every surviving ticket must equal
    /// its independent single-vector run — bit-identical in sorted mode.
    #[test]
    fn engine_equals_independent_runs(
        (a, requests) in operands(40),
        threads in 1usize..5,
        max_lanes in 0usize..5,
        sorted in any::<bool>(),
    ) {
        let options = SpMSpVOptions::with_threads(threads).sorted(sorted);
        let engine = Engine::over_with(
            &a,
            PlusTimes,
            EngineConfig::default().max_lanes(max_lanes).options(options.clone()),
        );
        let tickets: Vec<_> = requests
            .iter()
            .map(|r| {
                let mut req = MxvRequest::new(r.frontier.clone());
                if let Some((bits, mode)) = &r.mask {
                    req = req.mask(bits.clone(), *mode);
                }
                engine.submit(req)
            })
            .collect();
        // Mid-flight retirement: cancel the flagged subset before a flush
        // ever sees it.
        let cancelled: usize = requests
            .iter()
            .zip(&tickets)
            .filter(|(r, t)| r.cancel && t.cancel())
            .count();
        let outcome = engine.flush();
        prop_assert_eq!(outcome.retired, cancelled);
        prop_assert_eq!(outcome.lanes, requests.len() - cancelled);

        for (r, ticket) in requests.iter().zip(tickets) {
            let served = ticket.try_take();
            if r.cancel {
                prop_assert!(
                    matches!(served, Some(Err(EngineError::Cancelled))),
                    "cancelled ticket must resolve as Cancelled, not be served"
                );
                continue;
            }
            let y = served
                .expect("surviving request must be served by the flush")
                .expect("surviving request must succeed");
            let oracle = independent_run(&a, r, &options);
            if sorted {
                prop_assert_eq!(
                    y, oracle,
                    "sorted engine lane must be bit-identical to its independent run"
                );
            } else {
                prop_assert!(
                    y.same_entries(&oracle),
                    "unsorted engine lane must match its independent run's entries"
                );
            }
        }
        let stats = engine.stats();
        prop_assert_eq!(stats.requests, requests.len());
        prop_assert_eq!(stats.retired, cancelled);
        prop_assert_eq!(stats.lanes_executed, requests.len() - cancelled);
    }

    /// Same property through every batched algorithm family the engine can
    /// pool, including the CombBLAS row-split baseline.
    #[test]
    fn every_batch_family_serves_identically(
        (a, requests) in operands(30),
        threads in 1usize..4,
    ) {
        let options = SpMSpVOptions::with_threads(threads);
        for kind in BatchAlgorithmKind::all() {
            let engine = Engine::over_with(
                &a,
                PlusTimes,
                EngineConfig::default().batch_algorithm(kind).options(options.clone()),
            );
            let tickets: Vec<_> = requests
                .iter()
                .map(|r| {
                    let mut req = MxvRequest::new(r.frontier.clone());
                    if let Some((bits, mode)) = &r.mask {
                        req = req.mask(bits.clone(), *mode);
                    }
                    engine.submit(req)
                })
                .collect();
            engine.flush();
            for (r, ticket) in requests.iter().zip(tickets) {
                let y = ticket.try_take().expect("served").expect("succeeded");
                prop_assert_eq!(
                    y,
                    independent_run(&a, r, &options),
                    "family {} diverged from the independent run", kind
                );
            }
        }
    }

    /// Closing one of two sessions retires exactly its queued requests; the
    /// other session's results are untouched.
    #[test]
    fn session_close_is_precise_lane_retirement(
        (a, requests) in operands(30),
        threads in 1usize..4,
    ) {
        let options = SpMSpVOptions::with_threads(threads);
        let engine = Engine::over_with(
            &a,
            PlusTimes,
            EngineConfig::default().options(options.clone()),
        );
        let doomed = engine.session();
        let survivor = engine.session();
        // `cancel` doubles as the session assignment here: flagged requests
        // go to the session that closes mid-flight.
        let tickets: Vec<_> = requests
            .iter()
            .map(|r| {
                let mut req = MxvRequest::new(r.frontier.clone());
                if let Some((bits, mode)) = &r.mask {
                    req = req.mask(bits.clone(), *mode);
                }
                if r.cancel { doomed.submit(req) } else { survivor.submit(req) }
            })
            .collect();
        let doomed_count = requests.iter().filter(|r| r.cancel).count();
        prop_assert_eq!(doomed.close(), doomed_count);
        let outcome = engine.flush();
        prop_assert_eq!(outcome.lanes, requests.len() - doomed_count);
        for (r, ticket) in requests.iter().zip(tickets) {
            if r.cancel {
                prop_assert!(
                    matches!(ticket.try_take(), Some(Err(EngineError::Cancelled))),
                    "closed session's request must resolve as Cancelled"
                );
            } else {
                prop_assert_eq!(
                    ticket.try_take().expect("survivor served").expect("survivor succeeded"),
                    independent_run(&a, r, &options)
                );
            }
        }
    }

    /// BFS-shaped serving: the `(min, select2nd)` semiring with per-request
    /// ¬visited masks, checked against independent runs.
    #[test]
    fn select2nd_requests_coalesce_exactly(
        (a, requests) in operands(30),
        threads in 1usize..4,
    ) {
        let options = SpMSpVOptions::with_threads(threads);
        let engine: Engine<'_, f64, usize, Select2ndMin> = Engine::over_with(
            &a,
            Select2ndMin,
            EngineConfig::default().options(options.clone()),
        );
        let frontiers: Vec<SparseVec<usize>> = requests
            .iter()
            .map(|r| {
                let idx = r.frontier.indices().to_vec();
                SparseVec::from_pairs(a.ncols(), idx.into_iter().map(|i| (i, i)).collect())
                    .expect("indices already validated")
            })
            .collect();
        let tickets: Vec<_> = requests
            .iter()
            .zip(&frontiers)
            .map(|(r, frontier)| {
                let mut req = MxvRequest::new(frontier.clone());
                if let Some((bits, _)) = &r.mask {
                    req = req.mask(bits.clone(), MaskMode::Complement);
                }
                engine.submit(req)
            })
            .collect();
        engine.flush();
        for ((r, frontier), ticket) in requests.iter().zip(&frontiers).zip(tickets) {
            let y = ticket.try_take().expect("served").expect("succeeded");
            let op = Mxv::over(&a).semiring(&Select2ndMin).options(options.clone());
            let mut op = match &r.mask {
                Some((bits, _)) => op.mask(bits, MaskMode::Complement).prepare(),
                None => op.prepare(),
            };
            prop_assert_eq!(y, op.run(frontier), "Select2ndMin lane diverged");
        }
    }
}

/// Deterministic end-to-end check on a realistic graph: many masked BFS-ish
/// requests served through one engine under a tight width budget, each
/// compared bit-for-bit with its independent run.
#[test]
fn chunked_flush_on_rmat_is_bit_identical() {
    use sparse_substrate::gen::{random_sparse_vec, rmat, RmatParams};

    let a = rmat(9, 8, RmatParams::graph500(), 77);
    let n = a.ncols();
    let options = SpMSpVOptions::with_threads(4);
    let engine = Engine::over_with(
        &a,
        PlusTimes,
        EngineConfig::default().max_lanes(3).options(options.clone()),
    );
    let requests: Vec<GenRequest> = (0..10)
        .map(|i| {
            let frontier = random_sparse_vec(n, 40, 500 + i as u64);
            let mask = (i % 3 != 0).then(|| {
                let bits = MaskBits::from_indices(n, (i..n).step_by(2 + i % 4));
                (bits, if i % 2 == 0 { MaskMode::Keep } else { MaskMode::Complement })
            });
            GenRequest { frontier, mask, cancel: false }
        })
        .collect();
    let tickets: Vec<_> = requests
        .iter()
        .map(|r| {
            let mut req = MxvRequest::new(r.frontier.clone());
            if let Some((bits, mode)) = &r.mask {
                req = req.mask(bits.clone(), *mode);
            }
            engine.submit(req)
        })
        .collect();
    let outcome = engine.flush();
    assert!(outcome.batches > 3, "width budget 3 over 10 mixed requests must chunk");
    for (r, ticket) in requests.iter().zip(tickets) {
        let y = ticket.try_take().expect("served").expect("succeeded");
        assert_eq!(y, independent_run(&a, r, &options));
    }
}
