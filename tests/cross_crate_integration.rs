//! Integration tests spanning the substrate, the SpMSpV algorithms and the
//! graph algorithms: end-to-end workflows a downstream user would run.

use sparse_substrate::gen::{grid2d, random_sparse_vec, rmat, RmatParams};
use sparse_substrate::mmio::{read_matrix_market, write_matrix_market};
use sparse_substrate::ops::spmspv_reference;
use sparse_substrate::permute::Permutation;
use sparse_substrate::{CscMatrix, PlusTimes};
use spmspv::{AlgorithmKind, SpMSpV, SpMSpVBucket, SpMSpVOptions};
use spmspv_graphs::{bfs, connected_components, pseudo_diameter};

#[test]
fn matrix_market_roundtrip_feeds_the_bucket_algorithm() {
    // Generate → write .mtx → read back → multiply → compare with the
    // in-memory original.
    let a = rmat(9, 6, RmatParams::web_like(), 4);
    let mut buffer = Vec::new();
    write_matrix_market(&mut buffer, &a).unwrap();
    let reread = CscMatrix::from_coo(read_matrix_market(&buffer[..]).unwrap(), |x, y| x + y);
    assert_eq!(a, reread);

    let x = random_sparse_vec(a.ncols(), 100, 3);
    let mut alg = SpMSpVBucket::new(&reread, SpMSpVOptions::with_threads(4));
    let y = alg.multiply(&x, &PlusTimes);
    assert!(y.approx_same_entries(&spmspv_reference(&a, &x, &PlusTimes), 1e-9));
}

#[test]
fn bfs_levels_are_invariant_under_vertex_relabeling() {
    // Relabel the graph with a random permutation; BFS from the relabeled
    // source must reach the same number of vertices with the same level
    // multiset.
    let a = rmat(9, 8, RmatParams::graph500(), 11);
    let n = a.ncols();
    let p = Permutation::random(n, 99);
    let b = p.permute_matrix(&a);

    let ra = bfs(&a, 3, AlgorithmKind::Bucket, SpMSpVOptions::with_threads(4));
    let rb = bfs(&b, p.apply(3), AlgorithmKind::Bucket, SpMSpVOptions::with_threads(4));
    assert_eq!(ra.num_visited, rb.num_visited);

    let mut levels_a: Vec<usize> = ra.levels.iter().flatten().copied().collect();
    let mut levels_b: Vec<usize> = rb.levels.iter().flatten().copied().collect();
    levels_a.sort_unstable();
    levels_b.sort_unstable();
    assert_eq!(levels_a, levels_b);
}

#[test]
fn connected_components_agree_with_bfs_reachability() {
    let a = grid2d(25, 4); // connected
    let labels = connected_components(&a, AlgorithmKind::Bucket, SpMSpVOptions::with_threads(2));
    let r = bfs(&a, 0, AlgorithmKind::Bucket, SpMSpVOptions::with_threads(2));
    // Connected graph: every vertex reachable and carrying label 0.
    assert_eq!(r.num_visited, a.ncols());
    assert!(labels.iter().all(|&l| l == 0));
}

#[test]
fn diameter_classification_matches_table_iv_families() {
    // The scale-free stand-in must have a much smaller pseudo-diameter than
    // the mesh stand-in of similar vertex count — the property Table IV's
    // two families are built around.
    let scale_free = rmat(11, 16, RmatParams::graph500(), 5);
    let mesh = grid2d(45, 45);
    let d_sf = pseudo_diameter(&scale_free, 0, 3);
    let d_mesh = pseudo_diameter(&mesh, 0, 3);
    assert!(d_sf * 4 < d_mesh, "scale-free {d_sf} vs mesh {d_mesh}");
}

#[test]
fn all_parallel_algorithms_agree_inside_a_full_bfs() {
    let a = rmat(10, 8, RmatParams::graph500(), 21);
    let reference = bfs(&a, 1, AlgorithmKind::Sequential, SpMSpVOptions::with_threads(1));
    for kind in AlgorithmKind::paper_competitors() {
        let r = bfs(&a, 1, kind, SpMSpVOptions::with_threads(3));
        assert_eq!(r.levels, reference.levels, "{kind} BFS levels diverge");
    }
}

#[test]
fn repeated_multiplications_reuse_one_algorithm_instance() {
    // The BFS-style usage pattern: one prepared algorithm, many vectors.
    let a = rmat(10, 6, RmatParams::web_like(), 8);
    let mut alg = SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(4));
    for f in [1usize, 10, 100, 1000, a.ncols()] {
        let x = random_sparse_vec(a.ncols(), f, f as u64);
        let y = alg.multiply(&x, &PlusTimes);
        let expected = spmspv_reference(&a, &x, &PlusTimes);
        assert!(y.approx_same_entries(&expected, 1e-9), "diverged at nnz(x)={f}");
        assert!(y.is_sorted());
    }
}
