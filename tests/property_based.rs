//! Property-based tests (proptest) over randomly generated matrices,
//! vectors and algorithm configurations.
//!
//! These complement the unit tests with invariants that must hold for *any*
//! operand pair:
//!
//! * every parallel algorithm agrees with the sequential reference,
//! * sorted and unsorted bucket variants agree,
//! * the output never contains duplicate or out-of-range indices,
//! * format conversions round-trip,
//! * SpMSpV is linear in the input vector.

use proptest::prelude::*;
use sparse_substrate::ops::{required_multiplications, spmspv_reference};
use sparse_substrate::{CooMatrix, CscMatrix, CsrMatrix, DcscMatrix, PlusTimes, SparseVec};
use spmspv::baselines::{CombBlasHeap, CombBlasSpa, GraphMatSpMSpV, SortBased};
use spmspv::{SpMSpV, SpMSpVBucket, SpMSpVOptions};

/// Strategy: a random sparse matrix with up to `max_dim` rows/columns and
/// integer-valued entries (so floating-point addition is exact and results
/// can be compared exactly regardless of reduction order).
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = CscMatrix<f64>> {
    (2usize..max_dim, 2usize..max_dim).prop_flat_map(|(m, n)| {
        let entry = (0..m, 0..n, 1i32..16);
        proptest::collection::vec(entry, 0..(m * n).min(400)).prop_map(move |entries| {
            let mut coo = CooMatrix::new(m, n);
            for (i, j, v) in entries {
                coo.push(i, j, v as f64);
            }
            CscMatrix::from_coo(coo, |a, b| a + b)
        })
    })
}

/// Strategy: a sparse vector of dimension `n` with integer values.
fn vector_strategy(n: usize) -> impl Strategy<Value = SparseVec<f64>> {
    proptest::collection::btree_map(0..n, 1i32..16, 0..n.min(60)).prop_map(move |map| {
        SparseVec::from_pairs(n, map.into_iter().map(|(i, v)| (i, v as f64)).collect())
            .expect("btree_map keys are unique and in range")
    })
}

/// Matrix and conforming vector together.
fn operands(max_dim: usize) -> impl Strategy<Value = (CscMatrix<f64>, SparseVec<f64>)> {
    matrix_strategy(max_dim).prop_flat_map(|a| {
        let n = a.ncols();
        (Just(a), vector_strategy(n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bucket_matches_reference_for_any_operands(
        (a, x) in operands(80),
        threads in 1usize..6,
        buckets_per_thread in 1usize..6,
        sorted in any::<bool>(),
        staging in prop_oneof![Just(0usize), Just(4usize), Just(512usize)],
    ) {
        let expected = spmspv_reference(&a, &x, &PlusTimes);
        let opts = SpMSpVOptions::with_threads(threads)
            .sorted(sorted)
            .buckets_per_thread(buckets_per_thread)
            .staging_buffer(staging);
        let mut alg = SpMSpVBucket::new(&a, opts);
        let y = alg.multiply(&x, &PlusTimes);
        prop_assert!(y.same_entries(&expected));
        // structural invariants
        prop_assert_eq!(y.len(), a.nrows());
        let mut seen = y.indices().to_vec();
        seen.sort_unstable();
        let before = seen.len();
        seen.dedup();
        prop_assert_eq!(before, seen.len(), "duplicate output indices");
        prop_assert!(seen.iter().all(|&i| i < a.nrows()));
        if sorted {
            prop_assert!(y.is_sorted());
        }
    }

    #[test]
    fn all_baselines_match_reference_for_any_operands(
        (a, x) in operands(60),
        threads in 1usize..5,
    ) {
        let expected = spmspv_reference(&a, &x, &PlusTimes);
        let opts = SpMSpVOptions::with_threads(threads);
        let mut algs: Vec<Box<dyn SpMSpV<f64, f64, PlusTimes>>> = vec![
            Box::new(CombBlasSpa::new(&a, opts.clone())),
            Box::new(CombBlasHeap::new(&a, opts.clone())),
            Box::new(GraphMatSpMSpV::new(&a, opts.clone())),
            Box::new(SortBased::new(&a, opts)),
        ];
        for alg in algs.iter_mut() {
            let y = alg.multiply(&x, &PlusTimes);
            prop_assert!(y.same_entries(&expected), "{} diverged", alg.name());
        }
    }

    #[test]
    fn spmspv_is_linear_in_the_vector((a, x) in operands(60)) {
        // A(2x) == 2(Ax) under plus-times with integer values.
        let doubled = SparseVec::from_parts(
            x.len(),
            x.indices().to_vec(),
            x.values().iter().map(|v| v * 2.0).collect(),
        ).unwrap();
        let mut alg = SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(2));
        let y1 = alg.multiply(&x, &PlusTimes);
        let y2 = alg.multiply(&doubled, &PlusTimes);
        let y1_doubled = SparseVec::from_parts(
            y1.len(),
            y1.indices().to_vec(),
            y1.values().iter().map(|v| v * 2.0).collect(),
        ).unwrap();
        prop_assert!(y2.same_entries(&y1_doubled));
    }

    #[test]
    fn output_nnz_is_bounded_by_required_work((a, x) in operands(80)) {
        let y = spmspv_reference(&a, &x, &PlusTimes);
        let work = required_multiplications(&a, &x);
        prop_assert!(y.nnz() <= work, "nnz(y)={} exceeds d*f={}", y.nnz(), work);
    }

    #[test]
    fn format_conversions_roundtrip(a in matrix_strategy(60)) {
        // CSC -> DCSC -> CSC and CSC -> CSR -> (transpose twice) agreements.
        let dcsc = DcscMatrix::from_csc(&a);
        prop_assert_eq!(dcsc.nnz(), a.nnz());
        prop_assert_eq!(dcsc.to_csc(), a.clone());

        let csr = CsrMatrix::from_csc(&a);
        for (i, j, v) in a.iter() {
            prop_assert_eq!(csr.get(i, j), Some(v));
        }

        let tt = a.transpose().transpose();
        prop_assert_eq!(tt, a.clone());

        // row_split partitions the nonzeros for any piece count
        for pieces in [1usize, 2, 3, 7] {
            let split = a.row_split(pieces);
            let total: usize = split.iter().map(|p| p.nnz()).sum();
            prop_assert_eq!(total, a.nnz());
        }
    }

    #[test]
    fn sorted_and_unsorted_bucket_variants_agree((a, x) in operands(70)) {
        let mut sorted = SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(3).sorted(true));
        let mut unsorted = SpMSpVBucket::new(&a, SpMSpVOptions::with_threads(3).sorted(false));
        let ys = sorted.multiply(&x, &PlusTimes);
        let yu = unsorted.multiply(&x, &PlusTimes);
        prop_assert!(ys.same_entries(&yu));
        prop_assert!(ys.is_sorted());
    }
}
