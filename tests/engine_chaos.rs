//! Chaos suite for the serving engine, driven by the `spmspv::failpoint`
//! harness (run with `--features failpoints`): inject kernel panics, delays,
//! injected errors, and forced overload, then assert the two invariants the
//! robustness layer promises:
//!
//! 1. **every ticket resolves** — a value or an `EngineError`, never a hang
//!    (all waits here are bounded by `wait_timeout`, so a violation fails
//!    the test instead of wedging the suite);
//! 2. **successful results are unaffected by the chaos** — bit-identical to
//!    an independent single-vector `PreparedMxv::run` of the same request.
//!
//! The failpoint registry is process-global, so every test takes `FP_LOCK`
//! for its whole body and relies on `FailGuard` drops to disarm on all exit
//! paths.
#![cfg(feature = "failpoints")]

use std::sync::Mutex;
use std::time::Duration;

use proptest::prelude::*;
use sparse_substrate::gen::{erdos_renyi, random_sparse_vec};
use sparse_substrate::{CscMatrix, MaskBits, PlusTimes, SparseVec};
use spmspv::engine::{Engine, EngineConfig, EngineError, MxvRequest, OverloadPolicy};
use spmspv::failpoint::{self, FailAction};
use spmspv::ops::Mxv;
use spmspv::{BatchAlgorithmKind, MaskMode};

/// Serializes every test in this file: failpoint sites are process-global.
static FP_LOCK: Mutex<()> = Mutex::new(());

fn fp_lock() -> std::sync::MutexGuard<'static, ()> {
    FP_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Bounded claim: every ticket in this suite is collected through this, so
/// a ticket that never resolves fails the assertion instead of hanging.
fn claim(ticket: &spmspv::engine::Ticket<f64>) -> Result<SparseVec<f64>, EngineError> {
    ticket.wait_timeout(Duration::from_secs(10))
}

fn independent_run(
    a: &CscMatrix<f64>,
    x: &SparseVec<f64>,
    mask: Option<(&MaskBits, MaskMode)>,
) -> SparseVec<f64> {
    let op = Mxv::over(a).semiring(&PlusTimes);
    let mut op = match mask {
        Some((bits, mode)) => op.mask(bits, mode).prepare(),
        None => op.prepare(),
    };
    op.run(x)
}

/// A panic inside the fused kernel's merge step must not take the flush
/// down: the engine catches it, retries the group on the naive oracle, and
/// every ticket still gets its bit-exact result.
#[test]
fn merge_panic_degrades_to_oracle_and_still_serves_exactly() {
    let _fp = fp_lock();
    let a = erdos_renyi(150, 5.0, 21);
    let engine = Engine::over(&a, PlusTimes);
    let xs: Vec<SparseVec<f64>> = (0..5).map(|i| random_sparse_vec(150, 30, 60 + i)).collect();
    let _g =
        failpoint::arm("batch.merge", FailAction::Panic("chaos: merge blew up".into()), Some(1));
    // Pin the bucket family so the flush is guaranteed to reach the armed
    // merge step (the adaptive dispatcher might pick it anyway; pinning
    // removes the maybe).
    let tickets: Vec<_> = xs
        .iter()
        .map(|x| engine.submit(MxvRequest::new(x.clone()).algorithm(BatchAlgorithmKind::Bucket)))
        .collect();
    let outcome = engine.flush();
    assert!(failpoint::hits("batch.merge") >= 1, "the fault plan must have fired");
    assert_eq!(outcome.panics_recovered, 1, "exactly one kernel failure survived");
    assert_eq!(outcome.degraded_flushes, 1, "the group was served by the oracle retry");
    assert_eq!(outcome.lanes, 5, "every lane still served");
    for (ticket, x) in tickets.iter().zip(&xs) {
        let y = claim(ticket).expect("degraded flush must still serve");
        assert_eq!(y, independent_run(&a, x, None), "degraded result diverged from oracle");
    }
    // The engine keeps serving cleanly after recovery: the evicted
    // descriptor is rebuilt lazily and the spent failpoint stays dormant.
    let again = engine.submit(MxvRequest::new(xs[0].clone()).algorithm(BatchAlgorithmKind::Bucket));
    let outcome = engine.flush();
    assert_eq!(outcome.panics_recovered, 0);
    assert_eq!(claim(&again).expect("healthy flush"), independent_run(&a, &xs[0], None));
    let stats = engine.stats();
    assert_eq!(stats.panics_recovered, 1);
    assert_eq!(stats.degraded_flushes, 1);
}

/// When the retry fails too (two consecutive injected errors), only the
/// doomed group's tickets fail — a different group in the same flush is
/// served untouched, and the third group in the next flush is healthy.
#[test]
fn double_execute_failure_fails_only_its_group() {
    let _fp = fp_lock();
    let a = erdos_renyi(120, 5.0, 33);
    let engine = Engine::over(&a, PlusTimes);
    let xs: Vec<SparseVec<f64>> = (0..4).map(|i| random_sparse_vec(120, 25, 90 + i)).collect();
    // Two shots: the doomed group's first attempt AND its oracle retry.
    // Submission order makes the Bucket group run first, so both shots land
    // on it; the Naive group's attempt comes third and finds the site spent.
    let _g = failpoint::arm(
        "engine.flush.execute",
        FailAction::Error("chaos: executor unavailable".into()),
        Some(2),
    );
    let doomed: Vec<_> = xs[..2]
        .iter()
        .map(|x| engine.submit(MxvRequest::new(x.clone()).algorithm(BatchAlgorithmKind::Bucket)))
        .collect();
    let healthy: Vec<_> = xs[2..]
        .iter()
        .map(|x| engine.submit(MxvRequest::new(x.clone()).algorithm(BatchAlgorithmKind::Naive)))
        .collect();
    let outcome = engine.flush();
    assert_eq!(outcome.panics_recovered, 2, "first attempt + failed retry");
    assert_eq!(outcome.degraded_flushes, 0, "the retry never succeeded");
    assert_eq!(outcome.lanes, 2, "only the healthy group's lanes executed");
    for t in &doomed {
        match claim(t) {
            Err(EngineError::KernelFailed(msg)) => {
                assert!(msg.contains("executor unavailable"), "error message lost: {msg}")
            }
            other => panic!("doomed ticket must fail with KernelFailed, got {other:?}"),
        }
    }
    for (t, x) in healthy.iter().zip(&xs[2..]) {
        let y = claim(t).expect("healthy group must be served");
        assert_eq!(y, independent_run(&a, x, None));
    }
}

/// A delay injected between execution and demux pushes an in-flight request
/// past its deadline: the engine must drop the stale result and fail the
/// ticket rather than deliver it as fresh.
#[test]
fn demux_delay_expires_in_flight_deadlines() {
    let _fp = fp_lock();
    let a = erdos_renyi(100, 4.0, 8);
    let engine = Engine::over(&a, PlusTimes);
    let x = random_sparse_vec(100, 20, 5);
    let _g =
        failpoint::arm("engine.flush.demux", FailAction::Delay(Duration::from_millis(30)), Some(1));
    let stale = engine.submit(MxvRequest::new(x.clone()).timeout(Duration::from_millis(5)));
    let outcome = engine.flush();
    assert_eq!(outcome.timeouts, 1, "the delayed lane must expire at demux");
    assert_eq!(outcome.lanes, 1, "the lane was executed, then dropped");
    assert_eq!(claim(&stale), Err(EngineError::DeadlineExceeded));
    assert_eq!(engine.stats().timeouts, 1);
    // Without the delay the same deadline is comfortable.
    let fresh = engine.submit(MxvRequest::new(x.clone()).timeout(Duration::from_secs(30)));
    engine.flush();
    assert_eq!(claim(&fresh).expect("served"), independent_run(&a, &x, None));
}

/// A panic before any group runs (queue drained, nothing resolved yet) is
/// the worst case for waiters: the resolution guard must fail every drained
/// ticket on the way out so no client is stranded.
#[test]
fn assemble_panic_resolves_every_drained_ticket() {
    let _fp = fp_lock();
    let a = erdos_renyi(80, 4.0, 14);
    let engine = Engine::over(&a, PlusTimes);
    let xs: Vec<SparseVec<f64>> = (0..2).map(|i| random_sparse_vec(80, 15, 40 + i)).collect();
    let tickets: Vec<_> = xs.iter().map(|x| engine.submit(MxvRequest::new(x.clone()))).collect();
    let _g = failpoint::arm(
        "engine.flush.assemble",
        FailAction::Panic("chaos: assembler down".into()),
        Some(1),
    );
    let flushed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.flush()));
    assert!(flushed.is_err(), "the armed assemble panic must escape flush itself");
    for t in &tickets {
        match claim(t) {
            Err(EngineError::KernelFailed(msg)) => {
                assert!(msg.contains("aborted by panic"), "unexpected failure: {msg}")
            }
            other => panic!("drained ticket must resolve as KernelFailed, got {other:?}"),
        }
    }
    // The engine itself is not poisoned: the next flush serves normally.
    let after = engine.submit(MxvRequest::new(xs[0].clone()));
    engine.flush();
    assert_eq!(claim(&after).expect("served"), independent_run(&a, &xs[0], None));
}

/// Same panic under the `serve` loop: the loop catches the crashed flush,
/// restarts, and keeps serving — clients after the crash succeed, clients
/// drained into the crashed flush get an error, nobody hangs.
#[test]
fn serve_loop_restarts_after_a_crashed_flush() {
    let _fp = fp_lock();
    let a = erdos_renyi(80, 4.0, 27);
    let engine =
        Engine::over_with(&a, PlusTimes, EngineConfig::default().linger(Duration::from_millis(1)));
    let x = random_sparse_vec(80, 15, 71);
    let _g = failpoint::arm(
        "engine.flush.assemble",
        FailAction::Panic("chaos: flush crashed mid-serve".into()),
        Some(1),
    );
    let (first, second) = engine.serve(|engine| {
        let t1 = engine.submit(MxvRequest::new(x.clone()));
        let first = claim(&t1);
        // By now the armed shot is spent (that flush crashed); the restarted
        // loop must serve this one.
        let t2 = engine.submit(MxvRequest::new(x.clone()));
        let second = claim(&t2);
        (first, second)
    });
    assert!(
        matches!(first, Err(EngineError::KernelFailed(_))),
        "crashed flush's client must get an error, got {first:?}"
    );
    assert_eq!(second.expect("restarted loop must keep serving"), independent_run(&a, &x, None));
    assert!(failpoint::hits("engine.flush.assemble") >= 1);
}

/// The degrade retry must be recorded as what *actually executed*: the
/// group was pinned to Bucket, but the Bucket attempt died before running,
/// so the audit trail (`EngineStats::choices`) must show one Naive run and
/// zero Bucket runs, and the trace ring must narrate the `degrade.retry`.
#[test]
fn degrade_retry_is_recorded_in_choices_and_trace() {
    use spmspv::obs::TraceKind;
    let _fp = fp_lock();
    let a = erdos_renyi(100, 4.0, 55);
    let engine = Engine::over(&a, PlusTimes);
    let xs: Vec<SparseVec<f64>> = (0..3).map(|i| random_sparse_vec(100, 20, 200 + i)).collect();
    // One shot: the Bucket group's first attempt dies at the execute site;
    // the naive retry finds the site spent and serves the group.
    let _g = failpoint::arm(
        "engine.flush.execute",
        FailAction::Error("chaos: first attempt only".into()),
        Some(1),
    );
    let tickets: Vec<_> = xs
        .iter()
        .map(|x| engine.submit(MxvRequest::new(x.clone()).algorithm(BatchAlgorithmKind::Bucket)))
        .collect();
    let outcome = engine.flush();
    assert_eq!(outcome.degraded_flushes, 1, "the retry must have served the group");
    for (t, x) in tickets.iter().zip(&xs) {
        assert_eq!(claim(t).expect("degraded flush serves"), independent_run(&a, x, None));
    }
    let choices = engine.stats().choices;
    let by_kernel = |kind: BatchAlgorithmKind| -> usize {
        choices.iter().filter(|(k, _, _)| *k == kind).map(|(_, _, n)| n).sum()
    };
    assert_eq!(by_kernel(BatchAlgorithmKind::Naive), 1, "retry's real kernel must be recorded");
    assert_eq!(by_kernel(BatchAlgorithmKind::Bucket), 0, "the failed attempt never executed");
    assert_eq!(choices.total(), 1, "exactly one batch actually ran");
    let events = engine.obs().events();
    assert!(
        events.iter().any(|e| matches!(
            e.kind,
            TraceKind::DegradeRetry { from: BatchAlgorithmKind::Bucket }
        )),
        "trace ring must contain the degrade.retry event, got: {events:?}"
    );
}

/// The generated fault plan for the chaos property.
#[derive(Debug, Clone)]
enum Fault {
    None,
    MergePanic,
    ExecuteError,
    ExecuteDelay,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline chaos property: random traffic + a random fault plan +
    /// forced shedding, and still (1) every ticket resolves within a bounded
    /// wait and (2) every successful ticket is bit-identical to its
    /// independent run.
    #[test]
    fn chaos_never_hangs_and_successes_are_exact(
        seed in 0u64..1000,
        nreq in 3usize..10,
        fault in prop_oneof![
            Just(Fault::None),
            Just(Fault::MergePanic),
            Just(Fault::ExecuteError),
            Just(Fault::ExecuteDelay),
        ],
        shed in any::<bool>(),
    ) {
        let _fp = fp_lock();
        let a = erdos_renyi(90, 4.0, seed);
        let config = if shed {
            // A queue smaller than the traffic forces Overloaded outcomes.
            EngineConfig::default()
                .queue_capacity(nreq.saturating_sub(2).max(1))
                .overload_policy(OverloadPolicy::ShedOldest)
        } else {
            EngineConfig::default()
        };
        let engine = Engine::over_with(&a, PlusTimes, config);
        let _guard = match fault {
            Fault::None => None,
            Fault::MergePanic => Some(failpoint::arm(
                "batch.merge",
                FailAction::Panic("chaos property: merge panic".into()),
                Some(1),
            )),
            Fault::ExecuteError => Some(failpoint::arm(
                "engine.flush.execute",
                FailAction::Error("chaos property: execute error".into()),
                Some(1),
            )),
            Fault::ExecuteDelay => Some(failpoint::arm(
                "engine.flush.execute",
                FailAction::Delay(Duration::from_millis(2)),
                Some(1),
            )),
        };
        let xs: Vec<SparseVec<f64>> =
            (0..nreq).map(|i| random_sparse_vec(90, 20, seed * 31 + i as u64)).collect();
        let tickets: Vec<_> = xs
            .iter()
            .map(|x| {
                // Pin Bucket so MergePanic plans actually reach their site.
                engine.submit(MxvRequest::new(x.clone()).algorithm(BatchAlgorithmKind::Bucket))
            })
            .collect();
        engine.flush();
        let mut successes = 0usize;
        for (ticket, x) in tickets.iter().zip(&xs) {
            // The bounded claim IS invariant (1): no hang, ever.
            match claim(ticket) {
                Ok(y) => {
                    successes += 1;
                    prop_assert_eq!(
                        y,
                        independent_run(&a, x, None),
                        "a chaos survivor diverged from its oracle"
                    );
                }
                Err(
                    EngineError::Overloaded
                    | EngineError::KernelFailed(_)
                    | EngineError::DeadlineExceeded,
                ) => {}
                Err(other) => {
                    return Err(TestCaseError::fail(format!("unexpected failure: {other:?}")));
                }
            }
        }
        // Every single-shot fault plan is lossless: a panic or error costs
        // the first attempt but the oracle retry serves the group, and a
        // delay merely slows the flush. Only forced shedding loses requests.
        if !shed {
            prop_assert_eq!(successes, nreq, "single-shot fault plans must serve everything");
        }
        // And the engine must still be healthy afterwards.
        let again = engine.submit(MxvRequest::new(xs[0].clone()));
        engine.flush();
        prop_assert_eq!(
            claim(&again).expect("post-chaos flush must serve"),
            independent_run(&a, &xs[0], None)
        );
    }
}

/// An Erdős–Rényi matrix with its values remapped to small integers, so
/// cross-shard ⊕-merges stay exact and sharded results compare bit-for-bit
/// against the unsharded oracle.
fn integral_matrix(n: usize, d: f64, seed: u64) -> CscMatrix<f64> {
    let a = erdos_renyi(n, d, seed);
    let mut coo = sparse_substrate::CooMatrix::new(n, n);
    for (i, j, v) in a.iter() {
        coo.push(i, j, (v * 8.0).floor() + 1.0);
    }
    CscMatrix::from_coo(coo, |x, y| x + y)
}

/// A small integral-valued frontier confined to `range`'s columns, so its
/// fan-out touches exactly one shard.
fn confined_vec(n: usize, range: &std::ops::Range<usize>, seed: u64) -> SparseVec<f64> {
    let want = range.len().clamp(1, 6);
    let mut pairs: Vec<(usize, f64)> = (0..want)
        .map(|t| {
            let col = range.start + (seed as usize * 7 + t * 13) % range.len();
            (col, ((seed as usize + t) % 9 + 1) as f64)
        })
        .collect();
    pairs.sort_unstable_by_key(|p| p.0);
    pairs.dedup_by_key(|p| p.0);
    SparseVec::from_pairs(n, pairs).expect("indices confined to range")
}

/// The tentpole isolation story: a failpoint armed inside exactly **one**
/// shard's flush (`shard.flush.1`). Every ticket routed through shard 1
/// fails with `KernelFailed`; tickets whose frontiers only touch shard 0's
/// columns are served in the *same flush*, bit-identical to the oracle —
/// and once the shot is spent, the previously doomed frontiers (including
/// cross-shard merges) serve exactly.
#[test]
fn single_shard_outage_fails_only_routed_tickets() {
    use spmspv::shard::ShardedEngine;
    let _fp = fp_lock();
    let a = integral_matrix(140, 5.0, 77);
    let router = ShardedEngine::partition(&a, PlusTimes, 3);
    assert!(router.num_shards() >= 2, "need ≥ 2 shards for an isolation story");
    let r0 = router.plan().range(0);
    let r1 = router.plan().range(1);

    let safe_x: Vec<SparseVec<f64>> =
        (0..3).map(|i| confined_vec(a.ncols(), &r0, 10 + i)).collect();
    let doomed_x: Vec<SparseVec<f64>> =
        (0..3).map(|i| confined_vec(a.ncols(), &r1, 50 + i)).collect();

    let before = failpoint::hits("shard.flush.1");
    let _g = failpoint::arm(
        "shard.flush.1",
        FailAction::Error("chaos: shard 1 unreachable".into()),
        Some(1),
    );
    let safe: Vec<_> = safe_x.iter().map(|x| router.submit(MxvRequest::new(x.clone()))).collect();
    let doomed: Vec<_> =
        doomed_x.iter().map(|x| router.submit(MxvRequest::new(x.clone()))).collect();
    let outcome = router.flush();
    assert_eq!(failpoint::hits("shard.flush.1"), before + 1, "the outage must have fired");
    assert_eq!(outcome.merged, safe.len(), "sibling-shard tickets resolve untouched");
    assert_eq!(outcome.failed, doomed.len(), "only shard-1-routed tickets fail");
    for (t, x) in safe.iter().zip(&safe_x) {
        let y = claim(t).expect("shard 0 must be unaffected by shard 1's outage");
        assert!(y.same_entries(&independent_run(&a, x, None)), "survivor diverged from oracle");
    }
    for t in &doomed {
        match claim(t) {
            Err(EngineError::KernelFailed(msg)) => {
                assert!(msg.contains("shard 1 unreachable"), "outage message lost: {msg}")
            }
            other => panic!("shard-1 ticket must fail with KernelFailed, got {other:?}"),
        }
    }

    // The shot is spent: the same frontiers — plus one straddling both
    // shards — now serve exactly through the healed fleet.
    let mut straddle = confined_vec(a.ncols(), &r0, 3);
    for (i, v) in confined_vec(a.ncols(), &r1, 4).iter() {
        straddle.push(i, *v);
    }
    let retry: Vec<_> = doomed_x
        .iter()
        .chain(std::iter::once(&straddle))
        .map(|x| router.submit(MxvRequest::new(x.clone())))
        .collect();
    let outcome = router.flush();
    assert_eq!(outcome.failed, 0, "healed fleet must serve everything");
    assert_eq!(outcome.merged, retry.len());
    for (t, x) in retry.iter().zip(doomed_x.iter().chain(std::iter::once(&straddle))) {
        let y = claim(t).expect("healed shard must serve");
        assert!(y.same_entries(&independent_run(&a, x, None)), "post-outage result diverged");
    }
    assert_eq!(router.obs().snapshot().counter("shard.failed"), Some(doomed_x.len() as u64));
}

/// Failpoint parity over sockets: the same `shard.flush.1` outage armed on
/// a TCP-connected router has the same blast radius as in-process — the
/// downed shard's tickets fail with the transport's `shard 1:` attribution,
/// sibling hosts serve bit-exact in the same flush, and the injected outage
/// never touches the wire (healing needs no reconnect).
#[test]
fn single_shard_outage_has_the_same_blast_radius_over_tcp() {
    use spmspv::net::{ShardHost, TcpConfig};
    use spmspv::obs::ObsConfig;
    use spmspv::shard::{ShardPlan, ShardedEngine};
    let _fp = fp_lock();
    let a = integral_matrix(120, 5.0, 78);
    let plan = ShardPlan::balanced(&a, 3);
    assert!(plan.num_shards() >= 2, "need ≥ 2 shards for an isolation story");

    let mut hosts = Vec::new();
    let mut addrs = Vec::new();
    for (s, part) in a.column_split(plan.bounds()).into_iter().enumerate() {
        let host = ShardHost::bind(
            "127.0.0.1:0",
            s,
            plan.range(s),
            part,
            PlusTimes,
            EngineConfig::default(),
        )
        .expect("bind an ephemeral localhost port");
        addrs.push(host.local_addr().expect("bound"));
        hosts.push(host.spawn());
    }
    let router = ShardedEngine::<f64, f64, PlusTimes>::connect(
        plan.clone(),
        a.nrows(),
        PlusTimes,
        &addrs,
        TcpConfig::default(),
        ObsConfig::default(),
    )
    .expect("dial every host");
    let r0 = router.plan().range(0);
    let r1 = router.plan().range(1);

    let safe_x: Vec<SparseVec<f64>> =
        (0..3).map(|i| confined_vec(a.ncols(), &r0, 20 + i)).collect();
    let doomed_x: Vec<SparseVec<f64>> =
        (0..3).map(|i| confined_vec(a.ncols(), &r1, 60 + i)).collect();

    let before = failpoint::hits("shard.flush.1");
    let _g = failpoint::arm(
        "shard.flush.1",
        FailAction::Error("chaos: shard 1 unreachable".into()),
        Some(1),
    );
    let safe: Vec<_> = safe_x.iter().map(|x| router.submit(MxvRequest::new(x.clone()))).collect();
    let doomed: Vec<_> =
        doomed_x.iter().map(|x| router.submit(MxvRequest::new(x.clone()))).collect();
    let outcome = router.flush();
    assert_eq!(failpoint::hits("shard.flush.1"), before + 1, "the outage must have fired");
    assert_eq!(outcome.merged, safe.len(), "sibling hosts serve in the same flush");
    assert_eq!(outcome.failed, doomed.len(), "only shard-1-routed tickets fail");
    assert!(
        outcome.failures.iter().all(|m| m.contains("shard 1:")),
        "remote failures carry their shard attribution: {:?}",
        outcome.failures
    );
    for (t, x) in safe.iter().zip(&safe_x) {
        let y = claim(t).expect("sibling hosts must be unaffected");
        assert!(y.same_entries(&independent_run(&a, x, None)), "survivor diverged from oracle");
    }
    for t in &doomed {
        match claim(t) {
            Err(EngineError::KernelFailed(msg)) => assert!(
                msg.contains("shard 1:") && msg.contains("unreachable"),
                "outage attribution lost: {msg}"
            ),
            other => panic!("shard-1 ticket must fail with KernelFailed, got {other:?}"),
        }
    }

    // The shot is spent: the doomed frontiers now serve exactly — and the
    // injected outage never broke the connection, so no reconnect happened.
    let retry: Vec<_> =
        doomed_x.iter().map(|x| router.submit(MxvRequest::new(x.clone()))).collect();
    let outcome = router.flush();
    assert_eq!(outcome.failed, 0, "healed fleet serves everything: {:?}", outcome.failures);
    for (t, x) in retry.iter().zip(&doomed_x) {
        let y = claim(t).expect("healed shard must serve");
        assert!(y.same_entries(&independent_run(&a, x, None)), "post-outage result diverged");
    }
    let snap = router.obs().snapshot();
    assert_eq!(snap.counter("net.reconnects").unwrap_or(0), 0, "the outage was injected, not real");

    drop(router);
    for host in hosts {
        host.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Byzantine-frame defense: a lying host is quarantined, never merged.
// ---------------------------------------------------------------------------

/// Spawns `replicas` hosts per shard of `plan`, every replica of a shard
/// loaded with the same column slice of `a`.
fn spawn_replicated_fleet(
    a: &CscMatrix<f64>,
    plan: &spmspv::shard::ShardPlan,
    replicas: usize,
) -> (Vec<Vec<spmspv::net::ShardHostHandle>>, Vec<Vec<std::net::SocketAddr>>) {
    use spmspv::net::ShardHost;
    let mut handles = Vec::new();
    let mut groups = Vec::new();
    for (s, part) in a.column_split(plan.bounds()).into_iter().enumerate() {
        let mut hs = Vec::new();
        let mut addrs = Vec::new();
        for _ in 0..replicas {
            let host = ShardHost::bind(
                "127.0.0.1:0",
                s,
                plan.range(s),
                part.clone(),
                PlusTimes,
                EngineConfig::default(),
            )
            .expect("bind an ephemeral localhost port");
            addrs.push(host.local_addr().expect("bound listener has an address"));
            hs.push(host.spawn());
        }
        handles.push(hs);
        groups.push(addrs);
    }
    (handles, groups)
}

/// Transport config for byzantine tests: no background heartbeat (the
/// exchange must catch the lie itself) and fast re-dials.
fn byzantine_config() -> spmspv::net::TcpConfig {
    spmspv::net::TcpConfig {
        connect_retries: 1,
        retry_backoff: Duration::from_millis(1),
        heartbeat: None,
        ..spmspv::net::TcpConfig::default()
    }
}

/// Tentpole acceptance: a host answering with a **wrong correlation id** is
/// quarantined within the flush (`shard.replica.quarantined` incremented),
/// its replica absorbs the batch, and every result stays bit-identical to
/// the oracle — zero failed tickets.
#[test]
fn byzantine_wrong_id_is_quarantined_and_failed_over() {
    use spmspv::obs::ObsConfig;
    use spmspv::shard::{ShardPlan, ShardedEngine};
    let _fp = fp_lock();
    let a = integral_matrix(120, 5.0, 91);
    let plan = ShardPlan::balanced(&a, 2).with_fingerprints_of(&a);
    assert!(plan.num_shards() >= 2);

    let (hosts, groups) = spawn_replicated_fleet(&a, &plan, 2);
    let router = ShardedEngine::<f64, f64, PlusTimes>::connect_replicated(
        plan.clone(),
        a.nrows(),
        PlusTimes,
        &groups,
        byzantine_config(),
        ObsConfig::default(),
    )
    .expect("dial the replicated fleet");
    let r0 = plan.range(0);
    let r1 = plan.range(1);

    // Shard 0's primary lies about one reply's id; the replica is honest.
    let _g = failpoint::arm(
        "net.host.byzantine.wrong_id.0",
        FailAction::Error("byzantine: corrupt the correlation id".into()),
        Some(1),
    );
    let xs: Vec<SparseVec<f64>> = (0..3)
        .map(|i| confined_vec(a.ncols(), &r0, 30 + i))
        .chain((0..2).map(|i| confined_vec(a.ncols(), &r1, 70 + i)))
        .collect();
    let tickets: Vec<_> = xs.iter().map(|x| router.submit(MxvRequest::new(x.clone()))).collect();
    let outcome = router.flush();
    assert_eq!(
        outcome.failed, 0,
        "the honest replica must absorb the byzantine primary: {:?}",
        outcome.failures
    );
    for (t, x) in tickets.iter().zip(&xs) {
        let y = claim(t).expect("every ticket serves through the honest replica");
        assert!(y.same_entries(&independent_run(&a, x, None)), "byzantine reply leaked a result");
    }
    let snap = router.obs().snapshot();
    assert_eq!(
        snap.counter("shard.replica.quarantined"),
        Some(1),
        "exactly the lying connection is quarantined"
    );
    assert!(
        snap.counter("shard.replica.failovers").unwrap_or(0) >= 1,
        "the quarantine must register as a failover"
    );
    assert!(
        snap.counter("shard.replica.trips").unwrap_or(0) >= 1,
        "quarantine trips the replica's breaker"
    );

    drop(router);
    for group in hosts {
        for host in group {
            host.shutdown();
        }
    }
}

/// A replica-less byzantine host has the single-shard-outage blast radius:
/// an **out-of-range partial index** quarantines the connection, fails only
/// the tickets routed through that shard (with byzantine attribution),
/// sibling shards serve in the same flush, and the fleet heals once the
/// shot is spent.
#[test]
fn byzantine_bad_index_fails_only_routed_tickets_then_heals() {
    use spmspv::obs::ObsConfig;
    use spmspv::shard::{ShardPlan, ShardedEngine};
    let _fp = fp_lock();
    let a = integral_matrix(120, 5.0, 92);
    let plan = ShardPlan::balanced(&a, 2).with_fingerprints_of(&a);
    let (hosts, groups) = spawn_replicated_fleet(&a, &plan, 1);
    let router = ShardedEngine::<f64, f64, PlusTimes>::connect_replicated(
        plan.clone(),
        a.nrows(),
        PlusTimes,
        &groups,
        byzantine_config(),
        ObsConfig::default(),
    )
    .expect("dial the fleet");
    let r0 = plan.range(0);
    let r1 = plan.range(1);

    let _g = failpoint::arm(
        "net.host.byzantine.bad_index.1",
        FailAction::Error("byzantine: first partial index becomes u64::MAX".into()),
        Some(1),
    );
    let safe_x: Vec<SparseVec<f64>> =
        (0..2).map(|i| confined_vec(a.ncols(), &r0, 40 + i)).collect();
    let doomed_x: Vec<SparseVec<f64>> =
        (0..2).map(|i| confined_vec(a.ncols(), &r1, 80 + i)).collect();
    let safe: Vec<_> = safe_x.iter().map(|x| router.submit(MxvRequest::new(x.clone()))).collect();
    let doomed: Vec<_> =
        doomed_x.iter().map(|x| router.submit(MxvRequest::new(x.clone()))).collect();
    let outcome = router.flush();
    assert_eq!(outcome.merged, safe.len(), "sibling shard serves in the same flush");
    assert_eq!(outcome.failed, doomed.len(), "only the byzantine shard's tickets fail");
    for (t, x) in safe.iter().zip(&safe_x) {
        let y = claim(t).expect("sibling shard unaffected");
        assert!(y.same_entries(&independent_run(&a, x, None)), "survivor diverged");
    }
    for t in &doomed {
        match claim(t) {
            Err(EngineError::KernelFailed(msg)) => assert!(
                msg.contains("shard 1:") && msg.contains("byzantine"),
                "byzantine attribution lost: {msg}"
            ),
            other => panic!("byzantine shard's ticket must fail as KernelFailed, got {other:?}"),
        }
    }
    let snap = router.obs().snapshot();
    assert_eq!(snap.counter("shard.replica.quarantined"), Some(1));

    // The shot is spent: the quarantined connection re-dials and serves.
    let retry: Vec<_> =
        doomed_x.iter().map(|x| router.submit(MxvRequest::new(x.clone()))).collect();
    let outcome = router.flush();
    assert_eq!(outcome.failed, 0, "healed host serves: {:?}", outcome.failures);
    for (t, x) in retry.iter().zip(&doomed_x) {
        let y = claim(t).expect("healed host serves");
        assert!(y.same_entries(&independent_run(&a, x, None)), "post-quarantine result diverged");
    }
    assert!(
        router.obs().snapshot().counter("net.reconnects").unwrap_or(0) >= 1,
        "healing a quarantine is a real reconnect"
    );

    drop(router);
    for group in hosts {
        for host in group {
            host.shutdown();
        }
    }
}

/// Same blast radius for a host that **truncates** its reply mid-header:
/// the undecodable frame quarantines the connection, only its routed
/// tickets fail, and the fleet heals on the next flush.
#[test]
fn byzantine_truncated_reply_quarantines_then_heals() {
    use spmspv::obs::ObsConfig;
    use spmspv::shard::{ShardPlan, ShardedEngine};
    let _fp = fp_lock();
    let a = integral_matrix(120, 5.0, 93);
    let plan = ShardPlan::balanced(&a, 2).with_fingerprints_of(&a);
    let (hosts, groups) = spawn_replicated_fleet(&a, &plan, 1);
    let router = ShardedEngine::<f64, f64, PlusTimes>::connect_replicated(
        plan.clone(),
        a.nrows(),
        PlusTimes,
        &groups,
        byzantine_config(),
        ObsConfig::default(),
    )
    .expect("dial the fleet");
    let r1 = plan.range(1);

    let _g = failpoint::arm(
        "net.host.byzantine.truncate.1",
        FailAction::Error("byzantine: cut the reply mid-header".into()),
        Some(1),
    );
    let doomed_x: Vec<SparseVec<f64>> =
        (0..2).map(|i| confined_vec(a.ncols(), &r1, 85 + i)).collect();
    let doomed: Vec<_> =
        doomed_x.iter().map(|x| router.submit(MxvRequest::new(x.clone()))).collect();
    let outcome = router.flush();
    assert_eq!(outcome.failed, doomed.len(), "the truncating shard's tickets fail");
    for t in &doomed {
        match claim(t) {
            Err(EngineError::KernelFailed(msg)) => {
                assert!(msg.contains("shard 1:"), "truncation attribution lost: {msg}")
            }
            other => panic!("expected KernelFailed, got {other:?}"),
        }
    }
    assert_eq!(router.obs().snapshot().counter("shard.replica.quarantined"), Some(1));

    let retry: Vec<_> =
        doomed_x.iter().map(|x| router.submit(MxvRequest::new(x.clone()))).collect();
    let outcome = router.flush();
    assert_eq!(outcome.failed, 0, "healed host serves: {:?}", outcome.failures);
    for (t, x) in retry.iter().zip(&doomed_x) {
        let y = claim(t).expect("healed host serves");
        assert!(y.same_entries(&independent_run(&a, x, None)), "post-truncation result diverged");
    }

    drop(router);
    for group in hosts {
        for host in group {
            host.shutdown();
        }
    }
}
