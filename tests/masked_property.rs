//! Property-based tests for in-kernel masked SpMSpV: for any operands and
//! any mask, every kernel's `multiply_masked` / `multiply_batch_masked`
//! must equal the post-filtered unmasked oracle (multiply, then drop the
//! rows the mask rejects) — across [`MaskMode::Keep`] and
//! [`MaskMode::Complement`], semirings (`PlusTimes`, the BFS
//! `Select2ndMin`), sorted and unsorted storage, every algorithm family,
//! and batch widths `k ∈ {1, 3, 32}` with shared and per-lane masks.
//!
//! Entry values are small integers (stored as `f64` where applicable) so
//! floating-point addition is exact and results compare exactly regardless
//! of reduction order.

use std::sync::Arc;

use proptest::prelude::*;
use sparse_substrate::{
    CooMatrix, CscMatrix, MaskBits, PlusTimes, Select2ndMin, SparseVec, SparseVecBatch,
};
use spmspv::batch::mask_filter_batch;
use spmspv::ops::Mxv;
use spmspv::{
    build_algorithm, build_batch_algorithm, AlgorithmKind, BatchAlgorithmKind, BatchMaskView,
    MaskMode, MaskView, SpMSpVOptions,
};

const ALL_KINDS: [AlgorithmKind; 6] = [
    AlgorithmKind::Bucket,
    AlgorithmKind::CombBlasSpa,
    AlgorithmKind::CombBlasHeap,
    AlgorithmKind::GraphMat,
    AlgorithmKind::SortBased,
    AlgorithmKind::Sequential,
];

/// Strategy: a random sparse matrix with up to `max_dim` rows/columns and
/// small-integer entries.
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = CscMatrix<f64>> {
    (2usize..max_dim, 2usize..max_dim).prop_flat_map(|(m, n)| {
        let entry = (0..m, 0..n, 1i32..16);
        proptest::collection::vec(entry, 0..(m * n).min(300)).prop_map(move |entries| {
            let mut coo = CooMatrix::new(m, n);
            for (i, j, v) in entries {
                coo.push(i, j, v as f64);
            }
            CscMatrix::from_coo(coo, |a, b| a + b)
        })
    })
}

/// Strategy: one sparse lane of dimension `n` with integer values, stored in
/// ascending or (when `reversed`) descending index order so both sorted and
/// unsorted inputs are exercised.
fn lane_strategy(n: usize) -> impl Strategy<Value = SparseVec<f64>> {
    (proptest::collection::btree_map(0..n, 1i32..16, 0..n.min(40)), any::<bool>()).prop_map(
        move |(map, reversed)| {
            let mut pairs: Vec<(usize, f64)> =
                map.into_iter().map(|(i, v)| (i, v as f64)).collect();
            if reversed {
                pairs.reverse();
            }
            SparseVec::from_pairs(n, pairs).expect("btree_map keys are unique and in range")
        },
    )
}

/// Strategy: a mask over the output dimension `m` — an arbitrary subset of
/// the rows (possibly empty, possibly everything).
fn mask_strategy(m: usize) -> impl Strategy<Value = MaskBits> {
    proptest::collection::vec(0..m, 0..m.min(60))
        .prop_map(move |rows| MaskBits::from_indices(m, rows))
}

fn mode_strategy() -> impl Strategy<Value = MaskMode> {
    prop_oneof![Just(MaskMode::Keep), Just(MaskMode::Complement)]
}

/// Strategy: matrix, single input lane, mask over the rows, mask mode.
fn single_operands(
    max_dim: usize,
) -> impl Strategy<Value = (CscMatrix<f64>, SparseVec<f64>, MaskBits, MaskMode)> {
    matrix_strategy(max_dim).prop_flat_map(|a| {
        let n = a.ncols();
        let m = a.nrows();
        (Just(a), lane_strategy(n), mask_strategy(m), mode_strategy())
    })
}

/// Strategy: matrix, a batch of `k ∈ {1, 3, 32}` lanes, one mask per lane,
/// mask mode.
#[allow(clippy::type_complexity)]
fn batch_operands(
    max_dim: usize,
) -> impl Strategy<Value = (CscMatrix<f64>, SparseVecBatch<f64>, Vec<Arc<MaskBits>>, MaskMode)> {
    matrix_strategy(max_dim).prop_flat_map(|a| {
        let n = a.ncols();
        let m = a.nrows();
        let k = prop_oneof![Just(1usize), Just(3usize), Just(32usize)];
        (
            Just(a),
            k.prop_flat_map(move |k| {
                (
                    proptest::collection::vec(lane_strategy(n), k..k + 1),
                    proptest::collection::vec(mask_strategy(m).prop_map(Arc::new), k..k + 1),
                )
            }),
            mode_strategy(),
        )
            .prop_map(|(a, (lanes, masks), mode)| {
                let batch = SparseVecBatch::from_lanes(&lanes).expect("lanes share n");
                (a, batch, masks, mode)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every single-vector kernel's in-kernel mask equals post-filtering its
    /// own unmasked product, under `(+, ×)`.
    #[test]
    fn masked_single_kernels_equal_post_filter_oracle_plus_times(
        (a, x, mask, mode) in single_operands(40),
        threads in 1usize..5,
        sorted in any::<bool>(),
    ) {
        let opts = SpMSpVOptions::with_threads(threads).sorted(sorted);
        let view = MaskView::new(&mask, mode);
        for kind in ALL_KINDS {
            let mut alg = build_algorithm::<f64, f64, PlusTimes>(&a, kind, opts.clone());
            let y = alg.multiply_masked(&x, &PlusTimes, Some(view));
            let mut oracle = alg.multiply(&x, &PlusTimes);
            oracle.retain(|i, _| view.keeps(i));
            prop_assert!(
                y.same_entries(&oracle),
                "{kind} in-kernel mask diverged from post-filter ({mode:?}, sorted={sorted})"
            );
            // No masked-out row may survive.
            prop_assert!(
                y.iter().all(|(i, _)| view.keeps(i)),
                "{kind} leaked a masked-out row"
            );
        }
    }

    /// Same oracle under the BFS `(min, select2nd)` semiring, driven through
    /// the `Mxv` descriptor (the path `bfs` actually takes).
    #[test]
    fn masked_mxv_equals_post_filter_oracle_select2nd_min(
        (a, x, mask, mode) in single_operands(40),
        threads in 1usize..5,
    ) {
        let frontier = SparseVec::from_pairs(
            x.len(),
            x.iter().map(|(i, _)| (i, i)).collect(),
        ).expect("indices already validated");
        let view = MaskView::new(&mask, mode);
        for kind in ALL_KINDS {
            let mut masked_op = Mxv::over(&a)
                .semiring(&Select2ndMin)
                .algorithm(kind)
                .mask(&mask, mode)
                .options(SpMSpVOptions::with_threads(threads))
                .prepare();
            let y = masked_op.run(&frontier);
            let mut unmasked_op = Mxv::over(&a)
                .semiring(&Select2ndMin)
                .algorithm(kind)
                .options(SpMSpVOptions::with_threads(threads))
                .prepare();
            let mut oracle = unmasked_op.run(&frontier);
            oracle.retain(|i, _| view.keeps(i));
            prop_assert!(
                y.same_entries(&oracle),
                "{kind} Mxv mask diverged from post-filter under Select2ndMin ({mode:?})"
            );
        }
    }

    /// Both batched families, shared mask: in-kernel equals post-filter.
    #[test]
    fn masked_batch_kernels_equal_post_filter_oracle_shared(
        (a, x, masks, mode) in batch_operands(40),
        threads in 1usize..5,
        sorted in any::<bool>(),
    ) {
        let opts = SpMSpVOptions::with_threads(threads).sorted(sorted);
        let shared = &masks[0];
        let view = BatchMaskView::Shared(MaskView::new(shared, mode));
        for kind in [BatchAlgorithmKind::Bucket, BatchAlgorithmKind::Naive] {
            let mut alg = build_batch_algorithm::<f64, f64, PlusTimes>(&a, kind, opts.clone());
            let y = alg.multiply_batch_masked(&x, &PlusTimes, Some(&view));
            let oracle = mask_filter_batch(&alg.multiply_batch(&x, &PlusTimes), &view);
            prop_assert!(
                y.same_entries(&oracle),
                "{kind} shared mask diverged from post-filter ({mode:?}, sorted={sorted}, k={})",
                x.k()
            );
        }
    }

    /// Both batched families, one mask per lane: in-kernel equals
    /// post-filter, lane by lane.
    #[test]
    fn masked_batch_kernels_equal_post_filter_oracle_per_lane(
        (a, x, masks, mode) in batch_operands(40),
        threads in 1usize..5,
    ) {
        let opts = SpMSpVOptions::with_threads(threads);
        let view = BatchMaskView::PerLane { masks: &masks, mode };
        for kind in [BatchAlgorithmKind::Bucket, BatchAlgorithmKind::Naive] {
            let mut alg = build_batch_algorithm::<f64, f64, PlusTimes>(&a, kind, opts.clone());
            let y = alg.multiply_batch_masked(&x, &PlusTimes, Some(&view));
            let oracle = mask_filter_batch(&alg.multiply_batch(&x, &PlusTimes), &view);
            prop_assert!(
                y.same_entries(&oracle),
                "{kind} per-lane mask diverged from post-filter ({mode:?}, k={})",
                x.k()
            );
            for l in 0..y.k() {
                let (rows, _) = y.lane(l);
                prop_assert!(
                    rows.iter().all(|&i| view.keeps(i, l)),
                    "{kind} leaked a masked-out row in lane {l}"
                );
            }
        }
    }

    /// The fused masked batch is bit-identical to k masked single-vector
    /// calls (the mask analogue of the unmasked bit-identity property).
    #[test]
    fn masked_batch_is_bit_identical_to_masked_single_calls(
        (a, x, masks, mode) in batch_operands(32),
        batch_threads in 1usize..5,
        single_threads in 1usize..5,
    ) {
        let view = BatchMaskView::PerLane { masks: &masks, mode };
        let mut fused = build_batch_algorithm::<f64, f64, PlusTimes>(
            &a,
            BatchAlgorithmKind::Bucket,
            SpMSpVOptions::with_threads(batch_threads),
        );
        let y = fused.multiply_batch_masked(&x, &PlusTimes, Some(&view));
        let mut single = build_algorithm::<f64, f64, PlusTimes>(
            &a,
            AlgorithmKind::Bucket,
            SpMSpVOptions::with_threads(single_threads),
        );
        for (l, lane_mask) in masks.iter().enumerate() {
            let lane_y = single.multiply_masked(
                &x.lane_vec(l),
                &PlusTimes,
                Some(MaskView::new(lane_mask, mode)),
            );
            prop_assert_eq!(
                y.lane_vec(l), lane_y,
                "masked lane {} not bit-identical to a masked SpMSpVBucket call", l
            );
        }
    }

    /// Degenerate masks behave like set algebra demands: an empty Keep mask
    /// (or a full Complement mask) yields an empty product; an empty
    /// Complement mask (or a full Keep mask) yields the unmasked product.
    #[test]
    fn degenerate_masks_are_identity_or_annihilator(
        (a, x, _, _) in single_operands(30),
        threads in 1usize..4,
    ) {
        let m = a.nrows();
        let empty = MaskBits::new(m);
        let full = MaskBits::from_indices(m, 0..m);
        let opts = SpMSpVOptions::with_threads(threads);
        let mut alg = build_algorithm::<f64, f64, PlusTimes>(&a, AlgorithmKind::Bucket, opts);
        let unmasked = alg.multiply(&x, &PlusTimes);

        let keep_nothing =
            alg.multiply_masked(&x, &PlusTimes, Some(MaskView::new(&empty, MaskMode::Keep)));
        prop_assert!(keep_nothing.is_empty());
        let complement_everything =
            alg.multiply_masked(&x, &PlusTimes, Some(MaskView::new(&full, MaskMode::Complement)));
        prop_assert!(complement_everything.is_empty());

        let keep_everything =
            alg.multiply_masked(&x, &PlusTimes, Some(MaskView::new(&full, MaskMode::Keep)));
        prop_assert_eq!(&keep_everything, &unmasked);
        let complement_nothing =
            alg.multiply_masked(&x, &PlusTimes, Some(MaskView::new(&empty, MaskMode::Complement)));
        prop_assert_eq!(&complement_nothing, &unmasked);
    }
}

/// Deterministic spot check on the graph classes the paper benchmarks: the
/// BFS mask shape (¬visited) through the whole `Mxv` batch path.
#[test]
fn bfs_shaped_mask_on_rmat_and_grid_fixtures() {
    use sparse_substrate::gen::{grid2d, random_sparse_vec, rmat, RmatParams};

    let fixtures: Vec<(&str, CscMatrix<f64>)> =
        vec![("rmat", rmat(10, 8, RmatParams::graph500(), 17)), ("grid", grid2d(30, 34))];
    for (name, a) in fixtures {
        let n = a.ncols();
        let visited = MaskBits::from_indices(n, (0..n).step_by(3));
        for k in [1usize, 3, 32] {
            let lanes: Vec<SparseVec<f64>> =
                (0..k).map(|l| random_sparse_vec(n, (n / 8).max(1), 700 + l as u64)).collect();
            let x = SparseVecBatch::from_lanes(&lanes).unwrap();

            let mut masked_op = Mxv::over(&a)
                .semiring(&PlusTimes)
                .mask(&visited, MaskMode::Complement)
                .options(SpMSpVOptions::with_threads(4))
                .prepare();
            let y = masked_op.run_batch(&x);

            let mut unmasked_op = Mxv::over(&a)
                .semiring(&PlusTimes)
                .options(SpMSpVOptions::with_threads(3))
                .prepare::<f64>();
            let view = BatchMaskView::Shared(MaskView::new(&visited, MaskMode::Complement));
            let oracle = mask_filter_batch(&unmasked_op.run_batch(&x), &view);
            assert_eq!(y, oracle, "{name}: masked k={k} batch differs from post-filter oracle");
        }
    }
}
