//! Umbrella crate for the SpMSpV-bucket reproduction workspace.
//!
//! Re-exports the three library crates under short names so the examples and
//! integration tests read naturally:
//!
//! * [`sparse`] — matrix/vector formats, generators, I/O (`sparse-substrate`)
//! * [`spmspv`] — the SpMSpV-bucket algorithm and its baselines
//! * [`graphs`] — BFS, connected components, MIS, PageRank, matching

pub use sparse_substrate as sparse;
pub use spmspv;
pub use spmspv_graphs as graphs;
